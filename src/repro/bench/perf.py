"""Perf-regression observability: scenarios, artifacts, and gating.

The paper-replication benchmarks under ``benchmarks/`` print free-form
tables that no tool can diff, so a constant-factor regression in the
kNDS expansion loop or DRC probing would ship silently.  This module
turns the same workloads into a *tracked, gated* signal:

* a **scenario registry** — named, tagged workloads (kNDS RDS/SDS, DRC
  probing, the full-scan and TA baselines, index backends, and the
  instrumentation-overhead states that used to live in the standalone
  ``benchmarks/bench_obs_overhead.py``) built on the cached
  :func:`repro.bench.experiments.build_world`;
* a **unified runner** with warmup/repeat control that records wall-time
  samples (exact min/median/mean plus p50/p95/p99 estimated with
  :meth:`repro.obs.metrics.Histogram.quantile`), peak memory via
  :mod:`tracemalloc`, and a per-scenario :class:`MetricsRegistry`
  snapshot (DRC probes, BFS levels, index rows — the PR-1 counters);
* a **schema-versioned artifact** (``BENCH_<run>.json`` at the repo
  root) plus a human-readable markdown report;
* **baseline comparison** with noise-aware thresholds: deterministic
  work counters (probes, rows, nodes) decide first and, when steady,
  veto the wall-time gate entirely; scenarios without counters fall back
  to time, where the median must be confirmed by the min-of-N past a
  relative tolerance *and* an absolute floor (min-of-N filters scheduler
  noise that inflates single samples).  ``--fail-on-regress`` turns
  regressions into a nonzero exit code for CI.

Run it as ``python -m repro bench`` (see :func:`main` for flags)::

    python -m repro bench --scenarios smoke --repeat 3 \
        --json-out BENCH_smoke.json
    python -m repro bench --scenarios smoke --baseline BENCH_smoke.json \
        --fail-on-regress
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, TYPE_CHECKING

from repro.exceptions import ReproError
from repro.obs.metrics import Histogram, MetricsRegistry

if TYPE_CHECKING:  # import cycle: experiments builds scenarios from here
    from repro.bench.experiments import World
    from repro.obs import Observability

SCHEMA_VERSION = 1
"""Version of the ``BENCH_*.json`` artifact layout.

Bump when the artifact shape changes incompatibly; :func:`compare_runs`
refuses to gate across different schema versions.
"""

DEFAULT_REL_TOLERANCE = 0.40
"""Median must move by more than this fraction to leave ``neutral``.

Back-to-back unchanged-tree runs at the ``small`` scale drift up to
~35% on this class of hardware (CPU frequency scaling between minute-
long runs shifts min-of-N and median together), so the gate sits just
above that; dropped-optimization regressions are ~2x and clear it
easily.
"""

DEFAULT_ABS_FLOOR = 0.002
"""...and by more than this many seconds (sub-floor jitter is noise)."""

EXIT_REGRESSED = 3
"""Process exit code when ``--fail-on-regress`` finds a regression."""

WORK_COUNTERS = (
    "drc.probes", "knds.drc_calls", "knds.nodes_visited",
    "knds.bfs_levels", "knds.docs_examined", "index.rows_read",
    "fullscan.docs_examined", "ta.rows_read",
    "serve.cache_hits", "serve.cache_misses",
    "knds.arena_calls", "arena.pair_kernels",
    "arena.cache.hit", "arena.cache.miss",
    "arena.attached_concepts", "arena.packed_concepts",
    "types.lcp_calls",
    "trace.spans", "recorder.requests",
    "serve.analyze_settled", "serve.analyze_pruned",
    "serve.analyze_exact", "serve.analyze_rounds",
    "shard.fanout", "shard.merge_kept",
)
"""Deterministic cost-model counters gated alongside wall time.

The scenario workloads are seeded, so these counts are exactly
reproducible run to run — unlike wall time, which on shared hosts can
drift 2x between back-to-back runs.  A regression in early termination
(the very thing the paper's Figures 6–9 protect) shows up here first:
more probes, more nodes, more rows — and a counter verdict never flaps.

``arena.cache.hit`` / ``arena.pair_kernels`` are deterministic despite
the cross-query cache because every scenario's warmup and timed repeats
fully warm the concept-distance cache before the runner's untimed
metrics pass: at that point each lookup hits and zero kernels run,
independent of scenario ordering.  (``knds_batch_kernel`` inverts the
trick — its arena runs with the cache *disabled*, so every pass repeats
the identical kernel workload.)  Crucially these counters are also
identical across kernel tiers (packed scalar vs numpy batch): the
arena's counter-parity contract makes one batch call bump them by
exactly what the scalar loop would, so the ``base`` and ``perf`` CI
legs gate against the same committed baseline.  The per-tier
``arena.kernel_calls`` counter (Python-level kernel invocations, the
quantity the batch kernel exists to shrink) is deliberately *not* a
work counter — it appears in artifacts as information, not as a gate.

``trace.spans`` / ``recorder.requests`` pin the tracing pipeline's
per-request work in ``serve_traced``: loadgen mints deterministic trace
ids and head-samples them client-side, so the set of sampled requests —
and therefore the spans collected and records captured per pass — is
identical every run.  A structural change to the span tree (a new layer
span, a dropped one) moves ``trace.spans`` and gates.

``arena.attached_concepts`` / ``arena.packed_concepts`` pin the two
worker cold-start paths against each other: concepts made queryable per
pass by attaching a shared-memory snapshot (``arena_shared_attach``)
versus by re-deriving addresses and re-packing from scratch
(``arena_cold_repack``).  Both are exact functions of the ontology
size, so the wall-time ratio between the two scenarios is the
attach-vs-repack speedup with identical work on both sides.

``serve.analyze_*`` pin the EXPLAIN ANALYZE pipeline in
``serve_analyze``: sums of the per-query cost-profile fields (settled,
pruned, exact distances, rounds) across one seeded pass.  They are
exact functions of (corpus, queries, config), so a change that perturbs
profile collection — or the search work it attributes — gates here.
``profiler.samples`` is deliberately NOT a work counter: the sampling
profiler ticks on wall time, not on work.
"""

WORK_REL_TOLERANCE = 0.05
"""Counters beyond this fraction *and* :data:`WORK_ABS_FLOOR` gate."""

WORK_ABS_FLOOR = 1.0
"""...so a single extra probe on a tiny workload is not a regression."""

SAMPLE_BUCKETS = tuple(sorted(
    mantissa * 10.0 ** exponent
    for exponent in range(-5, 2)
    for mantissa in (1.0, 2.0, 5.0)
))
"""Log-spaced bucket bounds (10 µs … 50 s) for wall-time histograms."""


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------
def _default_instrument(obs: "Observability | None") -> None:
    """Default instrument hook: the scenario has nothing extra to wire."""


def _default_cleanup() -> None:
    """Default cleanup hook: the scenario holds no resources."""


@dataclass
class PreparedScenario:
    """One scenario, set up and ready to time.

    ``run`` executes a single timed iteration (the whole query batch);
    setup work — world building, query sampling, index construction —
    happens in :attr:`Scenario.prepare` so it never lands in a sample.
    ``instrument`` wires (``obs``) or unwires (``None``) the PR-1
    observability bundle through the layers the scenario touches, for
    the runner's untimed metrics/memory pass; ``cleanup`` releases any
    resources (SQLite connections) once the scenario is done.
    """

    run: Callable[[], Any]
    instrument: Callable[["Observability | None"], None] = \
        _default_instrument
    cleanup: Callable[[], None] = _default_cleanup


@dataclass(frozen=True)
class Scenario:
    """A named, tagged benchmark workload."""

    name: str
    description: str
    tags: frozenset[str]
    prepare: Callable[["World"], PreparedScenario]
    """``prepare(world)`` builds the workload on a benchmark world."""


SCENARIOS: dict[str, Scenario] = {}


def register_scenario(
    name: str, description: str, tags: tuple[str, ...] = (),
) -> "Callable[[Callable[[World], PreparedScenario]], Callable[[World], PreparedScenario]]":
    """Decorator: register ``prepare(world)`` as scenario ``name``."""
    def wrap(prepare: "Callable[[World], PreparedScenario]"
             ) -> "Callable[[World], PreparedScenario]":
        if name in SCENARIOS:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIOS[name] = Scenario(name, description, frozenset(tags),
                                   prepare)
        return prepare
    return wrap


def unregister_scenario(name: str) -> None:
    """Remove a scenario (test hygiene for temporary registrations)."""
    SCENARIOS.pop(name, None)


def select_scenarios(spec: str) -> list[Scenario]:
    """Resolve a comma-separated list of names/tags to scenarios.

    Each token matches a scenario name, a tag (all scenarios carrying
    it), or the keyword ``all``.  Order follows registration order with
    duplicates dropped; unknown tokens raise :class:`ReproError` listing
    what is available.
    """
    chosen: dict[str, Scenario] = {}
    for token in (part.strip() for part in spec.split(",")):
        if not token:
            continue
        if token == "all":
            chosen.update(SCENARIOS)
        elif token in SCENARIOS:
            chosen[token] = SCENARIOS[token]
        else:
            tagged = {name: scenario
                      for name, scenario in SCENARIOS.items()
                      if token in scenario.tags}
            if not tagged:
                known = ", ".join(sorted(
                    set(SCENARIOS) | {tag for scenario in SCENARIOS.values()
                                      for tag in scenario.tags}))
                raise ReproError(
                    f"unknown scenario or tag {token!r} (available: "
                    f"{known})")
            chosen.update(tagged)
    if not chosen:
        raise ReproError("no scenarios selected")
    return list(chosen.values())


# ----------------------------------------------------------------------
# Registered scenarios
# ----------------------------------------------------------------------
def _knds_batch(world: "World", corpus: str, mode: str, nq: int,
                k: int = 10) -> PreparedScenario:
    from repro.bench.experiments import DEFAULT_ERROR_THRESHOLD
    from repro.bench.workloads import (random_concept_queries,
                                       sample_documents)
    from repro.core.knds import KNDSConfig

    searcher = world.searchers[corpus]
    collection = world.corpus(corpus)
    config = KNDSConfig(error_threshold=DEFAULT_ERROR_THRESHOLD[corpus])
    count = world.scale.queries_per_point

    if mode == "rds":
        queries = random_concept_queries(collection, nq=nq, count=count,
                                         seed=nq)

        def run() -> None:
            for query in queries:
                searcher.rds(query, k, config=config)
    else:
        documents = sample_documents(collection, count=count, seed=nq)

        def run() -> None:
            for document in documents:
                searcher.sds(document, k, config=config)

    def instrument(obs: "Observability | None") -> None:
        searcher.instrument(obs)
        searcher.drc.instrument(obs)
        searcher.inverted.instrument(obs)
        searcher.forward.instrument(obs)

    return PreparedScenario(run=run, instrument=instrument)


@register_scenario(
    "knds_rds_patient",
    "kNDS RDS, PATIENT corpus (nq=3, k=10, paper-default eps)",
    tags=("smoke", "knds", "knds_rds"))
def _prepare_knds_rds_patient(world: "World") -> PreparedScenario:
    return _knds_batch(world, "PATIENT", "rds", nq=3)


@register_scenario(
    "knds_rds_radio",
    "kNDS RDS, RADIO corpus (nq=5, k=10, paper-default eps)",
    tags=("smoke", "knds", "knds_rds"))
def _prepare_knds_rds_radio(world: "World") -> PreparedScenario:
    return _knds_batch(world, "RADIO", "rds", nq=5)


@register_scenario(
    "knds_sds_radio",
    "kNDS SDS, RADIO corpus (whole documents as queries, k=10)",
    tags=("smoke", "knds", "knds_sds"))
def _prepare_knds_sds_radio(world: "World") -> PreparedScenario:
    return _knds_batch(world, "RADIO", "sds", nq=5)


@register_scenario(
    "knds_sds_patient",
    "kNDS SDS, PATIENT corpus (large documents as queries, k=10)",
    tags=("knds", "knds_sds"))
def _prepare_knds_sds_patient(world: "World") -> PreparedScenario:
    return _knds_batch(world, "PATIENT", "sds", nq=3)


@register_scenario(
    "drc_pairs",
    "DRC document-document distances over random nq=40 pairs (Figure 6 "
    "point)",
    tags=("smoke", "drc"))
def _prepare_drc_pairs(world: "World") -> PreparedScenario:
    from repro.bench.workloads import random_query_documents
    from repro.core.drc import DRC

    drc = DRC(world.ontology, world.dewey)
    collection = world.corpus("RADIO")
    count = max(4, world.scale.pairs_per_point)
    documents = random_query_documents(collection, nq=40, count=2 * count,
                                       seed=40)
    pairs = list(zip(documents[0::2], documents[1::2]))
    for document in documents:  # warm the shared Dewey cache (paper setup)
        for concept in document.concepts:
            world.dewey.addresses(concept)

    def run() -> None:
        for left, right in pairs:
            drc.document_document_distance(left.concepts, right.concepts)

    return PreparedScenario(run=run, instrument=drc.instrument)


@register_scenario(
    "fullscan_rds_radio",
    "Full-scan baseline RDS, RADIO corpus (nq=5, k=10)",
    tags=("smoke", "baseline"))
def _prepare_fullscan_rds_radio(world: "World") -> PreparedScenario:
    from repro.bench.workloads import random_concept_queries

    scanner = world.scanners["RADIO"]
    queries = random_concept_queries(world.corpus("RADIO"), nq=5,
                                     count=world.scale.queries_per_point,
                                     seed=5)

    def run() -> None:
        for query in queries:
            scanner.rds(query, 10)

    def instrument(obs: "Observability | None") -> None:
        scanner.instrument(obs)
        scanner.drc.instrument(obs)

    return PreparedScenario(run=run, instrument=instrument)


@register_scenario(
    "ta_rds_radio",
    "Threshold Algorithm RDS, RADIO corpus (index prebuilt over the "
    "workload's concepts)",
    tags=("baseline", "ta"))
def _prepare_ta_rds_radio(world: "World") -> PreparedScenario:
    from repro.baselines.ta import ThresholdAlgorithm
    from repro.bench.workloads import random_concept_queries

    collection = world.corpus("RADIO")
    queries = random_concept_queries(collection, nq=3,
                                     count=world.scale.queries_per_point,
                                     seed=41)
    needed = sorted({concept for query in queries for concept in query})
    ta = ThresholdAlgorithm.build(world.ontology, collection,
                                  concepts=needed)

    def run() -> None:
        for query in queries:
            ta.rds(query, 10)

    return PreparedScenario(run=run, instrument=ta.instrument)


@register_scenario(
    "knds_rds_sqlite",
    "kNDS RDS over the SQLite index backend, RADIO corpus (nq=5, k=10)",
    tags=("index",))
def _prepare_knds_rds_sqlite(world: "World") -> PreparedScenario:
    from repro.bench.experiments import DEFAULT_ERROR_THRESHOLD
    from repro.bench.workloads import random_concept_queries
    from repro.core.knds import KNDSConfig, KNDSearch
    from repro.index.sqlite import SQLiteIndexStore

    collection = world.corpus("RADIO")
    store = SQLiteIndexStore.build(collection)
    searcher = KNDSearch(world.ontology, collection,
                         inverted=store.inverted, forward=store.forward,
                         dewey=world.dewey)
    config = KNDSConfig(
        error_threshold=DEFAULT_ERROR_THRESHOLD["RADIO"])
    queries = random_concept_queries(collection, nq=5,
                                     count=world.scale.queries_per_point,
                                     seed=5)

    def run() -> None:
        for query in queries:
            searcher.rds(query, 10, config=config)

    def instrument(obs: "Observability | None") -> None:
        searcher.instrument(obs)
        store.instrument(obs)

    return PreparedScenario(run=run, instrument=instrument,
                            cleanup=store.close)


@register_scenario(
    "engine_rds_radio",
    "SearchEngine facade RDS, RADIO corpus (nq=5, k=10) — the only "
    "layer that records per-query latency, so this scenario feeds the "
    "query.latency_seconds p50/p95/p99 in the artifact",
    tags=("smoke", "engine"))
def _prepare_engine_rds_radio(world: "World") -> PreparedScenario:
    from repro.bench.workloads import random_concept_queries
    from repro.core.engine import SearchEngine

    engine = SearchEngine(world.ontology, world.corpus("RADIO"))
    queries = random_concept_queries(world.corpus("RADIO"), nq=5,
                                     count=world.scale.queries_per_point,
                                     seed=5)

    def run() -> None:
        for query in queries:
            engine.rds(list(query), k=10)

    return PreparedScenario(run=run, instrument=engine.instrument,
                            cleanup=engine.close)


@register_scenario(
    "shard_scatter_gather",
    "ShardedEngine RDS over 2 worker processes, RADIO corpus (nq=5, "
    "k=10) — scatter-gather fan-out, per-shard top-k and canonical "
    "merge; shard.fanout/shard.merge_kept gate the fan-out cost model "
    "(worker spawn happens in prepare, untimed)",
    tags=("smoke", "shard"))
def _prepare_shard_scatter_gather(world: "World") -> PreparedScenario:
    from repro.bench.workloads import random_concept_queries
    from repro.shard import ShardedEngine

    engine = ShardedEngine(world.ontology, world.corpus("RADIO"),
                           shards=2)
    queries = random_concept_queries(world.corpus("RADIO"), nq=5,
                                     count=world.scale.queries_per_point,
                                     seed=5)

    def run() -> None:
        for query in queries:
            engine.rds(list(query), k=10)

    return PreparedScenario(run=run, instrument=engine.instrument,
                            cleanup=engine.close)


def _overhead_scenario(world: "World",
                       state: str) -> PreparedScenario:
    """The retired ``bench_obs_overhead`` states as runner scenarios.

    Each state times the *same* RDS batch with a different level of
    instrumentation wired through the stack, so every ``BENCH_*.json``
    tracks the overhead trajectory (full/disabled ratio) over time.
    The timed repeats manage their own instrumentation (that *is* the
    workload), but the runner's untimed metrics pass is honored: it
    temporarily overrides the scenario bundle so the artifact still
    carries the deterministic work counters that anchor the gate.
    """
    from repro.bench.experiments import DEFAULT_ERROR_THRESHOLD
    from repro.bench.workloads import random_concept_queries
    from repro.core.knds import KNDSConfig
    from repro.obs import EventStream, Observability
    from repro.obs.tracing import Tracer

    searcher = world.searchers["RADIO"]
    queries = random_concept_queries(world.corpus("RADIO"), nq=5,
                                     count=world.scale.queries_per_point,
                                     seed=17)
    config = KNDSConfig(error_threshold=DEFAULT_ERROR_THRESHOLD["RADIO"])

    def wire(obs: "Observability | None") -> None:
        searcher.instrument(obs)
        searcher.drc.instrument(obs)
        searcher.inverted.instrument(obs)
        searcher.forward.instrument(obs)

    tracer = Tracer() if state == "full" else None
    if state == "disabled":
        obs = None
    else:
        obs = Observability(
            tracer=tracer,
            metrics=MetricsRegistry(),
            events=EventStream() if state == "full" else None)

    override: list["Observability"] = []  # runner bundle; metrics pass only

    def instrument(runner_obs: "Observability | None") -> None:
        override[:] = [] if runner_obs is None else [runner_obs]

    def run() -> None:
        if tracer is not None:
            tracer.clear()  # keep span storage flat across repeats
        wire(override[0] if override else obs)
        try:
            for query in queries:
                searcher.rds(query, 10, config=config)
        finally:
            wire(None)  # the world is shared: leave it uninstrumented

    return PreparedScenario(run=run, instrument=instrument)


@register_scenario(
    "obs_overhead_disabled",
    "Instrumentation overhead reference: RDS batch, no bundle attached "
    "(the library default)",
    tags=("smoke", "overhead"))
def _prepare_overhead_disabled(world: "World") -> PreparedScenario:
    return _overhead_scenario(world, "disabled")


@register_scenario(
    "obs_overhead_metrics",
    "Instrumentation overhead: RDS batch with a metrics registry only",
    tags=("overhead",))
def _prepare_overhead_metrics(world: "World") -> PreparedScenario:
    return _overhead_scenario(world, "metrics")


@register_scenario(
    "obs_overhead_full",
    "Instrumentation overhead: RDS batch with tracer + metrics + events",
    tags=("smoke", "overhead"))
def _prepare_overhead_full(world: "World") -> PreparedScenario:
    return _overhead_scenario(world, "full")


def _serve_cache_scenario(world: "World",
                          state: str) -> PreparedScenario:
    """The serving stack's cache split: ``hot`` (all hits) vs ``cold``.

    Both states drive the same seeded RDS batch through a
    :class:`repro.serve.service.QueryService` (admission gate + cache +
    worker pool) from the bench thread.  ``hot`` pre-warms the cache in
    prepare, so every timed request is answered from the LRU — the
    serving fast path; ``cold`` clears the cache at the top of each
    repeat, so every request pays admission + dispatch + a full engine
    query.  The gap between their medians is the measured value of the
    result cache, and the ``serve.cache_hits``/``serve.cache_misses``
    work counters pin each state's behaviour exactly (hot: all hits,
    cold: all misses).
    """
    from repro.bench.workloads import random_concept_queries
    from repro.core.engine import SearchEngine
    from repro.serve import QueryService, ServeConfig

    engine = SearchEngine(world.ontology, world.corpus("RADIO"))
    service = QueryService(engine, ServeConfig(
        workers=2, queue_limit=64, cache_size=4096,
        deadline_seconds=60.0))
    queries = random_concept_queries(world.corpus("RADIO"), nq=5,
                                     count=world.scale.queries_per_point,
                                     seed=23)

    if state == "hot":
        for query in queries:  # warm the cache during prepare
            service.rds(list(query), 10)

        def run() -> None:
            for query in queries:
                service.rds(list(query), 10)
    else:
        def run() -> None:
            service.cache.clear()
            for query in queries:
                service.rds(list(query), 10)

    def cleanup() -> None:
        service.close(drain_seconds=0.0)
        engine.close()

    return PreparedScenario(run=run, instrument=service.instrument,
                            cleanup=cleanup)


@register_scenario(
    "serve_cache_hot",
    "Query service RDS batch, RADIO corpus, pre-warmed result cache "
    "(every request a hit) — the serving fast path",
    tags=("smoke", "serve"))
def _prepare_serve_cache_hot(world: "World") -> PreparedScenario:
    return _serve_cache_scenario(world, "hot")


@register_scenario(
    "serve_cache_cold",
    "Query service RDS batch, RADIO corpus, cache cleared every repeat "
    "(every request a miss): admission + dispatch + full engine query",
    tags=("smoke", "serve"))
def _prepare_serve_cache_cold(world: "World") -> PreparedScenario:
    return _serve_cache_scenario(world, "cold")


@register_scenario(
    "serve_traced",
    "Query service RDS/SDS mix over live HTTP with request-scoped "
    "tracing on: loadgen sends deterministic traceparent headers "
    "(client head-sampled at 0.5), the flight recorder captures every "
    "request (slow threshold 0), so this gates the tracing overhead "
    "and pins spans-per-pass via the trace.spans work counter",
    tags=("smoke", "serve", "trace"))
def _prepare_serve_traced(world: "World") -> PreparedScenario:
    from repro.core.engine import SearchEngine
    from repro.obs.tracing import Tracer
    from repro.serve import QueryService, ServeConfig
    from repro.serve.http import ServerHandle
    from repro.serve.loadgen import mixed_workload, run_load

    engine = SearchEngine(world.ontology, world.corpus("RADIO"))
    service = QueryService(engine, ServeConfig(
        workers=2, queue_limit=64, deadline_seconds=60.0,
        cache_size=0,  # every request does full engine work: stable spans
        trace_seed=7, trace_sample_rate=1.0,  # client flag decides
        recorder_capacity=4096, recorder_recent=4096,
        slow_threshold_seconds=0.0))
    handle = ServerHandle.start(service, port=0)
    workload = mixed_workload(world.corpus("RADIO"),
                              count=world.scale.queries_per_point,
                              nq=5, k=10, seed=23)
    tracer = service.obs.tracer
    if not isinstance(tracer, Tracer):  # pragma: no cover - default real
        raise ReproError("serve_traced requires the service's default "
                         "span-collecting tracer")

    holder: list["Observability"] = []  # runner bundle; metrics pass only

    def instrument(obs: "Observability | None") -> None:
        holder[:] = [] if obs is None else [obs]

    def run() -> None:
        spans_before = tracer.spans_collected
        recorded_before = service.recorder.requests_recorded
        report = run_load(handle.address, workload, threads=1, repeat=1,
                          trace_sample_rate=0.5)
        if report.errors or report.server_errors:
            raise ReproError(
                f"serve_traced load failed: {report.server_errors} "
                f"server errors, transport errors {report.errors[:3]}")
        if holder:
            holder[0].metrics.counter(
                "trace.spans",
                "spans collected by the service tracer in one pass",
            ).inc(tracer.spans_collected - spans_before)
            holder[0].metrics.counter(
                "recorder.requests",
                "requests captured by the flight recorder in one pass",
            ).inc(service.recorder.requests_recorded - recorded_before)

    def cleanup() -> None:
        handle.stop()
        service.close(drain_seconds=0.0)
        engine.close()

    return PreparedScenario(run=run, instrument=instrument,
                            cleanup=cleanup)


@register_scenario(
    "serve_analyze",
    "Query service RDS batch with EXPLAIN ANALYZE on every request and "
    "the continuous sampling profiler running at its default 10 ms "
    "interval: gates the cost-attribution + profiler overhead against "
    "the plain serve path, and pins the profile contents via the "
    "serve.analyze_* work counters",
    tags=("smoke", "serve", "analyze"))
def _prepare_serve_analyze(world: "World") -> PreparedScenario:
    from repro.bench.workloads import random_concept_queries
    from repro.core.engine import SearchEngine
    from repro.serve import QueryService, ServeConfig

    engine = SearchEngine(world.ontology, world.corpus("RADIO"))
    service = QueryService(engine, ServeConfig(
        workers=2, queue_limit=64, deadline_seconds=60.0,
        profiler_enabled=True))  # default 10 ms sampling interval
    queries = random_concept_queries(world.corpus("RADIO"), nq=5,
                                     count=world.scale.queries_per_point,
                                     seed=23)

    holder: list["Observability"] = []  # runner bundle; metrics pass only

    def instrument(obs: "Observability | None") -> None:
        service.instrument(obs)
        holder[:] = [] if obs is None else [obs]

    def run() -> None:
        settled = pruned = exact = rounds = 0
        for query in queries:
            result = service.rds(list(query), 10, analyze=True)
            profile = result.results.cost_profile
            if profile is None:
                raise ReproError(
                    "serve_analyze expected a cost profile on every "
                    "analyze=True response")
            settled += profile.candidates_settled
            pruned += profile.candidates_pruned
            exact += profile.exact_distances
            rounds += profile.rounds
        if holder:
            registry = holder[0].metrics
            registry.counter(
                "serve.analyze_settled",
                "candidates settled across one analyzed pass",
            ).inc(settled)
            registry.counter(
                "serve.analyze_pruned",
                "candidates pruned across one analyzed pass",
            ).inc(pruned)
            registry.counter(
                "serve.analyze_exact",
                "exact distance computations across one analyzed pass",
            ).inc(exact)
            registry.counter(
                "serve.analyze_rounds",
                "kNDS rounds across one analyzed pass",
            ).inc(rounds)

    def cleanup() -> None:
        service.close(drain_seconds=0.0)
        engine.close()

    return PreparedScenario(run=run, instrument=instrument,
                            cleanup=cleanup)


@register_scenario(
    "arena_batch_rds",
    "SearchEngine.rds_many batch RDS, RADIO corpus (nq=5, k=10): arena "
    "interning and the shared concept-distance cache amortized across "
    "the batch",
    tags=("smoke", "arena"))
def _prepare_arena_batch_rds(world: "World") -> PreparedScenario:
    from repro.bench.workloads import random_concept_queries
    from repro.core.engine import SearchEngine

    engine = SearchEngine(world.ontology, world.corpus("RADIO"))
    queries = [list(query) for query in random_concept_queries(
        world.corpus("RADIO"), nq=5,
        count=world.scale.queries_per_point, seed=29)]

    def run() -> None:
        engine.rds_many(queries, k=10)

    return PreparedScenario(run=run, instrument=engine.instrument,
                            cleanup=engine.close)


@register_scenario(
    "knds_cached_sds",
    "kNDS SDS, RADIO corpus, private arena warmed in prepare: every "
    "timed distance is served from the concept-distance cache",
    tags=("smoke", "arena"))
def _prepare_knds_cached_sds(world: "World") -> PreparedScenario:
    from repro.bench.experiments import DEFAULT_ERROR_THRESHOLD
    from repro.bench.workloads import sample_documents
    from repro.core.arena import PackedDeweyArena
    from repro.core.knds import KNDSConfig, KNDSearch

    collection = world.corpus("RADIO")
    arena = PackedDeweyArena(world.ontology, world.dewey)
    searcher = KNDSearch(world.ontology, collection, dewey=world.dewey,
                         arena=arena)
    config = KNDSConfig(error_threshold=DEFAULT_ERROR_THRESHOLD["RADIO"])
    documents = sample_documents(collection,
                                 count=world.scale.queries_per_point,
                                 seed=31)

    for document in documents:  # warm the private distance cache
        searcher.sds(document, 10, config=config)

    def run() -> None:
        for document in documents:
            searcher.sds(document, 10, config=config)

    def instrument(obs: "Observability | None") -> None:
        searcher.instrument(obs)
        searcher.drc.instrument(obs)
        searcher.inverted.instrument(obs)
        searcher.forward.instrument(obs)

    return PreparedScenario(run=run, instrument=instrument)


@register_scenario(
    "knds_batch_kernel",
    "kNDS SDS, RADIO corpus, cache-disabled private arena on the best "
    "available kernel tier: every settle resolves its whole candidate "
    "pair list through the batch kernel each pass, so arena.kernel_calls "
    "(ungated) shows one invocation per batch on numpy vs one per pair "
    "on packed, while the gated counters stay tier-identical — asserted "
    "in prepare by running the batch on both tiers",
    tags=("smoke", "arena", "knds"))
def _prepare_knds_batch_kernel(world: "World") -> PreparedScenario:
    from repro.bench.experiments import DEFAULT_ERROR_THRESHOLD
    from repro.bench.workloads import sample_documents
    from repro.core import npkernel
    from repro.core.arena import PackedDeweyArena
    from repro.core.knds import KNDSConfig, KNDSearch

    collection = world.corpus("RADIO")
    config = KNDSConfig(error_threshold=DEFAULT_ERROR_THRESHOLD["RADIO"])
    documents = sample_documents(collection,
                                 count=world.scale.queries_per_point,
                                 seed=43)

    def build(tier: str) -> "tuple[PackedDeweyArena, KNDSearch]":
        # cache_entries=0 keeps the kernel workload identical every
        # pass (nothing is remembered between repeats), which is what
        # lets pair_kernels gate while kernel_calls shows the batch win.
        arena = PackedDeweyArena(world.ontology, world.dewey,
                                 cache_entries=0, kernel_tier=tier)
        searcher = KNDSearch(world.ontology, collection,
                             dewey=world.dewey, arena=arena)
        return arena, searcher

    def batch(searcher: "KNDSearch") -> list[list[tuple[Any, float]]]:
        return [[(item.doc_id, item.distance)
                 for item in searcher.sds(doc, 10, config=config).results]
                for doc in documents]

    def counters(arena: "PackedDeweyArena") -> tuple[int, int, int, int]:
        stats = arena.cache.stats
        return (arena.pair_lookups, arena.pair_kernels,
                stats.hits, stats.misses)

    arena, searcher = build("packed")
    if npkernel.available():
        packed_results = batch(searcher)
        packed_counters = counters(arena)
        arena, searcher = build("numpy")
        if batch(searcher) != packed_results:
            raise ReproError(
                "knds_batch_kernel: numpy-tier SDS results differ from "
                "the packed tier — the kernel ladder's bit-for-bit "
                "parity contract is broken")
        if counters(arena) != packed_counters:
            raise ReproError(
                f"knds_batch_kernel: gated arena counters differ "
                f"between tiers (packed {packed_counters}, numpy "
                f"{counters(arena)}) — batch-aware counter parity is "
                f"broken and the perf-smoke gate would flap across CI "
                f"legs")

    def run() -> None:
        for document in documents:
            searcher.sds(document, 10, config=config)

    def instrument(obs: "Observability | None") -> None:
        searcher.instrument(obs)
        searcher.drc.instrument(obs)
        searcher.inverted.instrument(obs)
        searcher.forward.instrument(obs)

    return PreparedScenario(run=run, instrument=instrument)


@register_scenario(
    "arena_shared_attach",
    "Worker cold start, shared-arena path: attach a read-only view of a "
    "published shared-memory snapshot, probe it, detach — O(1) in "
    "ontology size; compare against arena_cold_repack for the speedup",
    tags=("smoke", "arena", "shard"))
def _prepare_arena_shared_attach(world: "World") -> PreparedScenario:
    from repro.core.arena import PackedDeweyArena
    from repro.core.sharena import attach_view, publish_snapshot

    arena = PackedDeweyArena(world.ontology, world.dewey)
    segment = publish_snapshot(arena)  # interns the whole ontology
    probe = sorted(world.ontology)[:2]
    rounds = max(1, world.scale.queries_per_point)

    holder: list["Observability"] = []  # runner bundle; metrics pass only

    def instrument(obs: "Observability | None") -> None:
        holder[:] = [] if obs is None else [obs]

    def run() -> None:
        attached = 0
        for _ in range(rounds):
            view = attach_view(segment.spec, world.ontology,
                               dewey=world.dewey)
            try:
                # Touch the mapped buffers so the sample includes a real
                # read, not just the mmap bookkeeping.
                view.concept_pair_distance(probe[0], probe[1])
                attached += view.interned
            finally:
                view.detach()
        if holder:
            holder[0].metrics.counter(
                "arena.attached_concepts",
                "Concepts made queryable per pass by attaching the "
                "shared snapshot",
            ).inc(attached)

    return PreparedScenario(run=run, instrument=instrument,
                            cleanup=segment.unlink)


@register_scenario(
    "arena_cold_repack",
    "Worker cold start, private-arena path: derive every Dewey address "
    "and intern the whole ontology into a fresh arena — the work "
    "--shared-arena removes from each worker spawn",
    tags=("smoke", "arena", "shard"))
def _prepare_arena_cold_repack(world: "World") -> PreparedScenario:
    from repro.core.arena import PackedDeweyArena
    from repro.ontology.dewey import DeweyIndex

    concepts = sorted(world.ontology)
    rounds = max(1, world.scale.queries_per_point)

    holder: list["Observability"] = []  # runner bundle; metrics pass only

    def instrument(obs: "Observability | None") -> None:
        holder[:] = [] if obs is None else [obs]

    def run() -> None:
        packed = 0
        for _ in range(rounds):
            # A fresh DeweyIndex too: a spawned worker starts with cold
            # address memoization, so the honest repack cost includes
            # deriving every address, not just copying them in.
            arena = PackedDeweyArena(world.ontology,
                                     DeweyIndex(world.ontology))
            for concept in concepts:
                arena.concept_id(concept)
            packed += arena.interned
        if holder:
            holder[0].metrics.counter(
                "arena.packed_concepts",
                "Concepts interned per pass by re-packing from scratch",
            ).inc(packed)

    return PreparedScenario(run=run, instrument=instrument)


@register_scenario(
    "types_lcp_micro",
    "common_prefix_length micro-benchmark over Dewey address pairs from "
    "the RADIO corpus, identical-tuple fast path included",
    tags=("smoke", "micro"))
def _prepare_types_lcp_micro(world: "World") -> PreparedScenario:
    from repro.bench.workloads import sample_documents
    from repro.types import DeweyAddress, common_prefix_length

    addresses: list[DeweyAddress] = []
    for document in sample_documents(world.corpus("RADIO"), count=8,
                                     seed=37):
        for concept in document.concepts:
            addresses.extend(world.dewey.addresses(concept))
    # Deterministic mixed workload: strided distinct pairs plus a slice
    # of identical pairs that exercise the short-circuit.
    pairs = [(addresses[index], addresses[(index * 7 + 3) % len(addresses)])
             for index in range(len(addresses))]
    pairs.extend((address, address) for address in addresses[::4])
    rounds = max(1, world.scale.queries_per_point)

    holder: list["Observability"] = []  # runner bundle; metrics pass only

    def instrument(obs: "Observability | None") -> None:
        holder[:] = [] if obs is None else [obs]

    def run() -> None:
        for _ in range(rounds):
            for left, right in pairs:
                common_prefix_length(left, right)
        if holder:
            holder[0].metrics.counter(
                "types.lcp_calls",
                "common_prefix_length invocations in the micro scenario",
            ).inc(rounds * len(pairs))

    return PreparedScenario(run=run, instrument=instrument)


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
@dataclass
class ScenarioResult:
    """Everything the runner measured for one scenario."""

    name: str
    description: str
    tags: list[str]
    samples: list[float]
    peak_memory_bytes: int
    instrumented_seconds: float
    metrics: dict[str, float]
    latency_quantiles: dict[str, float] = field(default_factory=dict)

    @property
    def median(self) -> float:
        """Exact median of the wall-time samples (the gated statistic)."""
        return statistics.median(self.samples)

    @property
    def best(self) -> float:
        """Min-of-N wall time (the noise-filtered statistic)."""
        return min(self.samples)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view matching the ``BENCH_*.json`` schema."""
        histogram = Histogram("bench.samples", buckets=SAMPLE_BUCKETS)
        for sample in self.samples:
            histogram.observe(sample)
        return {
            "description": self.description,
            "tags": sorted(self.tags),
            "seconds": {
                "samples": self.samples,
                "min": self.best,
                "median": self.median,
                "mean": statistics.fmean(self.samples),
                "max": max(self.samples),
                "p50": histogram.quantile(0.50),
                "p95": histogram.quantile(0.95),
                "p99": histogram.quantile(0.99),
            },
            "peak_memory_bytes": self.peak_memory_bytes,
            "instrumented_seconds": self.instrumented_seconds,
            "metrics": self.metrics,
            "latency_quantiles": self.latency_quantiles,
        }


def run_scenario(scenario: Scenario, world: "World", *, repeat: int = 5,
                 warmup: int = 1) -> ScenarioResult:
    """Time one scenario: warmups, ``repeat`` samples, one metrics pass.

    The timed repeats run uninstrumented so gating sees clean numbers;
    a final untimed pass runs with a fresh metrics-only bundle under
    :mod:`tracemalloc` to capture the counter snapshot and peak memory
    (tracemalloc roughly doubles allocation cost, so its wall time is
    reported separately as ``instrumented_seconds``, never gated).
    """
    from repro.obs import Observability

    prepared = scenario.prepare(world)
    try:
        for _ in range(max(0, warmup)):
            prepared.run()
        samples: list[float] = []
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            prepared.run()
            samples.append(time.perf_counter() - start)

        registry = MetricsRegistry()
        obs = Observability(metrics=registry)
        prepared.instrument(obs)
        tracemalloc.start()
        try:
            start = time.perf_counter()
            prepared.run()
            instrumented_seconds = time.perf_counter() - start
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
            prepared.instrument(None)
    finally:
        prepared.cleanup()

    return ScenarioResult(
        name=scenario.name,
        description=scenario.description,
        tags=sorted(scenario.tags),
        samples=samples,
        peak_memory_bytes=peak,
        instrumented_seconds=instrumented_seconds,
        metrics=_flatten_metrics(registry),
        latency_quantiles=_latency_quantiles(registry),
    )


def _flatten_metrics(registry: MetricsRegistry) -> dict[str, float]:
    """Counters/gauges as values; histograms as ``.count``/``.sum``.

    Zero values are dropped to keep artifacts small — except for
    :data:`WORK_COUNTERS`, which stay even at zero: a counter that falls
    from N to 0 (e.g. ``drc.probes`` after the arena rewire) must appear
    on both sides of :func:`compare_runs` to register as an improvement,
    and a later 0 → N revival must gate as a regression.
    """
    flat: dict[str, float] = {}
    for name, data in registry.snapshot().items():
        if data["type"] == "histogram":
            if data["count"]:
                flat[f"{name}.count"] = data["count"]
                flat[f"{name}.sum"] = data["sum"]
        elif data["value"] or name in WORK_COUNTERS:
            flat[name] = data["value"]
    return flat


def _latency_quantiles(registry: MetricsRegistry) -> dict[str, float]:
    """p50/p95/p99 of per-query latency, when the scenario recorded any."""
    if "query.latency_seconds" not in registry:
        return {}
    histogram = registry.histogram("query.latency_seconds")
    if not histogram.count:
        return {}
    return {f"p{int(q * 100)}": histogram.quantile(q)
            for q in (0.50, 0.95, 0.99)}


def run_scenarios(spec: str, *, scale: str = "small", repeat: int = 5,
                  warmup: int = 1,
                  progress: Callable[[str], None] | None = None
                  ) -> dict[str, Any]:
    """Run a scenario selection and return the full artifact dict."""
    from repro.bench.experiments import build_world

    scenarios = select_scenarios(spec)
    world = build_world(scale)
    results: dict[str, Any] = {}
    for scenario in scenarios:
        result = run_scenario(scenario, world, repeat=repeat, warmup=warmup)
        results[scenario.name] = result.to_dict()
        if progress is not None:
            progress(f"{scenario.name}: median {result.median:.4f}s "
                     f"min {result.best:.4f}s over {len(result.samples)} "
                     f"repeats")
    return {
        "schema_version": SCHEMA_VERSION,
        "run": {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "scale": scale,
            "repeat": repeat,
            "warmup": warmup,
            "scenarios": spec,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "scenarios": results,
    }


# ----------------------------------------------------------------------
# Artifact I/O and reporting
# ----------------------------------------------------------------------
def write_artifact(artifact: dict[str, Any], path: str | Path) -> Path:
    """Write the JSON artifact; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_artifact(path: str | Path) -> dict[str, Any]:
    """Load and minimally validate a ``BENCH_*.json`` artifact."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"benchmark artifact not found: {path}")
    try:
        artifact = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ReproError(f"invalid benchmark artifact {path}: {error}")
    if not isinstance(artifact, dict) or "schema_version" not in artifact:
        raise ReproError(
            f"{path} is not a BENCH artifact (no schema_version)")
    return artifact


def render_markdown(artifact: dict[str, Any],
                    verdicts: list["Verdict"] | None = None) -> str:
    """Human-readable report for one artifact (and optional comparison)."""
    run = artifact["run"]
    lines = [
        "# Benchmark report",
        "",
        f"- scale: `{run['scale']}`, repeat: {run['repeat']}, "
        f"warmup: {run['warmup']}",
        f"- timestamp: {run['timestamp']} (UTC), "
        f"python {run['python']}",
        f"- schema version: {artifact['schema_version']}",
        "",
        "| scenario | median (s) | min (s) | p95 (s) | peak mem (MB) | "
        "DRC probes | index rows |",
        "|---|---|---|---|---|---|---|",
    ]
    for name, data in sorted(artifact["scenarios"].items()):
        seconds = data["seconds"]
        metrics = data.get("metrics", {})
        lines.append(
            f"| {name} | {seconds['median']:.4f} | {seconds['min']:.4f} "
            f"| {seconds['p95']:.4f} "
            f"| {data['peak_memory_bytes'] / 1e6:.2f} "
            f"| {metrics.get('drc.probes', 0):.0f} "
            f"| {metrics.get('index.rows_read', 0):.0f} |")
    overhead = _overhead_ratio(artifact)
    if overhead is not None:
        lines += ["", f"Instrumentation overhead (full / disabled "
                      f"median): **{overhead:.2f}x**"]
    if verdicts is not None:
        lines += ["", "## Baseline comparison", ""]
        lines += ["| scenario | verdict | baseline median (s) | "
                  "current median (s) | ratio |", "|---|---|---|---|---|"]
        for verdict in verdicts:
            base = ("-" if verdict.baseline_median is None
                    else f"{verdict.baseline_median:.4f}")
            cur = ("-" if verdict.current_median is None
                   else f"{verdict.current_median:.4f}")
            ratio = ("-" if verdict.ratio is None
                     else f"{verdict.ratio:.2f}x")
            lines.append(f"| {verdict.scenario} | **{verdict.status}** "
                         f"| {base} | {cur} | {ratio} |")
    return "\n".join(lines) + "\n"


def _overhead_ratio(artifact: dict[str, Any]) -> float | None:
    scenarios = artifact["scenarios"]
    try:
        disabled = scenarios["obs_overhead_disabled"]["seconds"]["median"]
        full = scenarios["obs_overhead_full"]["seconds"]["median"]
    except KeyError:
        return None
    return full / disabled if disabled else None


# ----------------------------------------------------------------------
# Baseline comparison (the gate)
# ----------------------------------------------------------------------
@dataclass
class Verdict:
    """Per-scenario outcome of comparing a run against a baseline."""

    scenario: str
    status: str  # improved | neutral | regressed | new | missing
    baseline_median: float | None = None
    current_median: float | None = None
    ratio: float | None = None
    note: str = ""


def _moved(current: float, baseline: float, rel_tolerance: float,
           abs_floor: float) -> int:
    """-1 improved, +1 regressed, 0 within the noise envelope."""
    delta = current - baseline
    if delta > baseline * rel_tolerance and delta > abs_floor:
        return 1
    if -delta > baseline * rel_tolerance and -delta > abs_floor:
        return -1
    return 0


def _work_move(current_metrics: dict[str, float],
               baseline_metrics: dict[str, float]) -> tuple[int, str]:
    """Compare the deterministic work counters; (-1/0/+1, detail)."""
    moves: list[str] = []
    increased = decreased = False
    for counter in WORK_COUNTERS:
        base = baseline_metrics.get(counter)
        cur = current_metrics.get(counter)
        if base is None or cur is None:
            continue
        move = _moved(cur, base, WORK_REL_TOLERANCE, WORK_ABS_FLOOR)
        if move:
            moves.append(f"{counter} {base:g}->{cur:g}")
            increased = increased or move > 0
            decreased = decreased or move < 0
    direction = 1 if increased else (-1 if decreased else 0)
    return direction, ", ".join(moves)


def compare_runs(current: dict[str, Any], baseline: dict[str, Any], *,
                 rel_tolerance: float = DEFAULT_REL_TOLERANCE,
                 abs_floor: float = DEFAULT_ABS_FLOOR,
                 time_gate: str = "auto") -> list[Verdict]:
    """Noise-aware per-scenario verdicts for ``current`` vs ``baseline``.

    Two signals per scenario, the deterministic one taking precedence:

    * **work counters** (:data:`WORK_COUNTERS`) — seeded workloads make
      probe/node/row counts exactly reproducible, so any movement past
      the (tight) tolerance is a real behavioral change and decides the
      verdict outright, and steady counters *veto* the wall-time gate
      (under ``time_gate="auto"``): on a shared host the clock drifts
      tens of percent on unchanged code, so a time-only verdict on a
      counter-bearing scenario is noise, not signal;
    * **wall time** — gates scenarios with no work counters on either
      side (and every scenario under ``time_gate="always"``), and only
      flips when the *median* and the *min-of-N* moved the same
      direction past both the relative tolerance and the absolute
      floor.  Medians alone flag scheduler noise; minima alone miss
      distribution shifts.

    ``time_gate="always"`` restores unconditional time gating for quiet
    dedicated hardware where a constant-factor slowdown with unchanged
    counters should still block.  Everything else is ``neutral``;
    scenarios present on only one side report ``new``/``missing``.
    """
    if time_gate not in ("auto", "always"):
        raise ReproError(f"time_gate must be 'auto' or 'always', "
                         f"got {time_gate!r}")
    if current["schema_version"] != baseline["schema_version"]:
        raise ReproError(
            f"cannot compare schema v{current['schema_version']} against "
            f"baseline v{baseline['schema_version']}; re-record the "
            f"baseline")
    verdicts: list[Verdict] = []
    base_scenarios = baseline["scenarios"]
    for name, data in sorted(current["scenarios"].items()):
        seconds = data["seconds"]
        base = base_scenarios.get(name)
        if base is None:
            verdicts.append(Verdict(name, "new",
                                    current_median=seconds["median"],
                                    note="no baseline entry"))
            continue
        base_seconds = base["seconds"]
        metrics = data.get("metrics", {})
        base_metrics = base.get("metrics", {})
        work_move, work_note = _work_move(metrics, base_metrics)
        # Artifacts pin every WORK_COUNTER, zeros included, so a counter
        # only vetoes the wall-time gate when it tracks actual work on at
        # least one side; all-zero counters leave the scenario time-gated.
        work_available = any(
            counter in metrics and counter in base_metrics
            and (metrics[counter] or base_metrics[counter])
            for counter in WORK_COUNTERS)
        median_move = _moved(seconds["median"], base_seconds["median"],
                             rel_tolerance, abs_floor)
        min_move = _moved(seconds["min"], base_seconds["min"],
                          rel_tolerance, abs_floor)
        if work_move != 0:
            status = "regressed" if work_move > 0 else "improved"
            note = f"work counters moved: {work_note}"
        elif work_available and time_gate == "auto":
            status = "neutral"
            note = (f"work counters steady; wall time informational "
                    f"(median {median_move:+d}, min {min_move:+d})")
        elif median_move == min_move and median_move != 0:
            status = "regressed" if median_move > 0 else "improved"
            note = (f"wall time: median {median_move:+d}, min "
                    f"{min_move:+d} at rel={rel_tolerance:g} "
                    f"abs={abs_floor:g}s")
        else:
            status = "neutral"
            work = "steady" if work_available else "absent"
            note = (f"median {median_move:+d}, min {min_move:+d} at "
                    f"rel={rel_tolerance:g} abs={abs_floor:g}s; work "
                    f"counters {work}")
        ratio = (seconds["median"] / base_seconds["median"]
                 if base_seconds["median"] else None)
        verdicts.append(Verdict(
            name, status,
            baseline_median=base_seconds["median"],
            current_median=seconds["median"],
            ratio=ratio,
            note=note))
    for name, base in sorted(base_scenarios.items()):
        if name not in current["scenarios"]:
            verdicts.append(Verdict(
                name, "missing",
                baseline_median=base["seconds"]["median"],
                note="in baseline but not in this run"))
    return verdicts


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The ``repro bench`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run registered perf scenarios, write a BENCH_*.json "
                    "artifact, and optionally gate against a baseline.")
    parser.add_argument("--scenarios", default="smoke",
                        help="comma-separated scenario names and/or tags "
                             "(default: smoke; 'all' runs everything)")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timed repeats per scenario (default: 5)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="untimed warmup runs per scenario "
                             "(default: 1)")
    parser.add_argument("--scale",
                        default=os.environ.get("REPRO_BENCH_SCALE",
                                               "small"),
                        help="benchmark world scale (default: "
                             "$REPRO_BENCH_SCALE or 'small')")
    parser.add_argument("--json-out", metavar="FILE",
                        help="artifact path (default: "
                             "BENCH_<timestamp>.json in the current "
                             "directory)")
    parser.add_argument("--markdown-out", metavar="FILE",
                        help="markdown report path (default: the "
                             "--json-out path with a .md suffix)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="previous BENCH_*.json to compare against")
    parser.add_argument("--rel-tolerance", type=float,
                        default=DEFAULT_REL_TOLERANCE,
                        help="relative movement below this is neutral "
                             f"(default: {DEFAULT_REL_TOLERANCE})")
    parser.add_argument("--abs-floor", type=float,
                        default=DEFAULT_ABS_FLOOR,
                        help="absolute movement (s) below this is "
                             f"neutral (default: {DEFAULT_ABS_FLOOR})")
    parser.add_argument("--time-gate", choices=("auto", "always"),
                        default="auto",
                        help="'auto' (default) gates wall time only for "
                             "scenarios without work counters; 'always' "
                             "gates every scenario on time too (quiet "
                             "dedicated hardware)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help=f"exit {EXIT_REGRESSED} if any scenario "
                             "regressed vs the baseline")
    parser.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """``python -m repro bench`` entry point; returns an exit code."""
    args = build_parser().parse_args(argv)
    if args.list:
        for name, scenario in SCENARIOS.items():
            tags = ",".join(sorted(scenario.tags))
            print(f"{name:<24} [{tags}]  {scenario.description}")
        return 0
    try:
        artifact = run_scenarios(
            args.scenarios, scale=args.scale, repeat=args.repeat,
            warmup=args.warmup, progress=print)
        verdicts = None
        if args.baseline:
            baseline = load_artifact(args.baseline)
            verdicts = compare_runs(artifact, baseline,
                                    rel_tolerance=args.rel_tolerance,
                                    abs_floor=args.abs_floor,
                                    time_gate=args.time_gate)
            for verdict in verdicts:
                print(f"{verdict.scenario}: {verdict.status} "
                      f"({verdict.note})")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    json_out = Path(args.json_out) if args.json_out else Path(
        f"BENCH_{time.strftime('%Y%m%dT%H%M%SZ', time.gmtime())}.json")
    write_artifact(artifact, json_out)
    print(f"# artifact written to {json_out}")
    markdown_out = (Path(args.markdown_out) if args.markdown_out
                    else json_out.with_suffix(".md"))
    markdown_out.write_text(render_markdown(artifact, verdicts),
                            encoding="utf-8")
    print(f"# report written to {markdown_out}")
    if verdicts is not None:
        regressed = [v.scenario for v in verdicts
                     if v.status == "regressed"]
        if regressed:
            print(f"# REGRESSED: {', '.join(regressed)}", file=sys.stderr)
            if args.fail_on_regress:
                return EXIT_REGRESSED
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
