"""Benchmark harness: workloads, experiment definitions, reporting.

Every table and figure of the paper's evaluation (Section 6) has an
experiment function in :mod:`repro.bench.experiments` that regenerates the
corresponding rows/series on synthetic SNOMED-like data, plus a
pytest-benchmark target under ``benchmarks/``.  Scales are configurable
(:class:`repro.bench.experiments.BenchScale`); the defaults keep the whole
suite interactive on a laptop while preserving the paper's PATIENT/RADIO
contrasts.

Run any experiment standalone::

    python -m repro.bench.experiments fig9 --scale small

:mod:`repro.bench.perf` layers perf-regression tracking on top: named,
tagged scenarios over the same worlds, schema-versioned ``BENCH_*.json``
artifacts, and noise-aware baseline gating (``python -m repro bench``).
"""

from repro.bench.experiments import (
    BenchScale,
    World,
    build_world,
    fig6_distance_calc,
    fig7_error_threshold,
    fig7_optimal_threshold,
    fig8_query_size,
    fig9_num_results,
    scalability_corpus_size,
    significance_fig9,
    table3_corpus_stats,
)
from repro.bench.memory import deep_sizeof, space_comparison
from repro.bench.perf import (
    SCENARIOS,
    Scenario,
    Verdict,
    compare_runs,
    run_scenario,
    run_scenarios,
    select_scenarios,
)
from repro.bench.plots import render_chart
from repro.bench.reporting import Table, series_table
from repro.bench.statistics import (
    best_growth_model,
    fit_growth_model,
    welch_t_test,
)
from repro.bench.workloads import (
    random_concept_queries,
    random_query_documents,
    sample_documents,
)

__all__ = [
    "BenchScale",
    "World",
    "build_world",
    "fig6_distance_calc",
    "fig7_error_threshold",
    "fig7_optimal_threshold",
    "fig8_query_size",
    "fig9_num_results",
    "significance_fig9",
    "scalability_corpus_size",
    "table3_corpus_stats",
    "Table",
    "series_table",
    "render_chart",
    "welch_t_test",
    "fit_growth_model",
    "best_growth_model",
    "deep_sizeof",
    "space_comparison",
    "random_concept_queries",
    "random_query_documents",
    "sample_documents",
    "SCENARIOS",
    "Scenario",
    "Verdict",
    "compare_runs",
    "run_scenario",
    "run_scenarios",
    "select_scenarios",
]
