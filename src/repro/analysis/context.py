"""Per-module state shared by all checkers during one lint pass."""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import PurePosixPath

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


@dataclass
class ModuleContext:
    """One parsed module plus everything checkers need to inspect it.

    ``scope`` is the module's dotted location *inside* the ``repro``
    package (``("core", "knds")`` for ``src/repro/core/knds.py``); files
    outside the package — checker test fixtures, scripts — get an empty
    scope, and path-scoped checkers treat an empty scope as in-scope so
    standalone fixture snippets still exercise every rule.
    """

    path: str
    source: str
    tree: ast.Module
    scope: tuple[str, ...] = ()
    _suppressions: dict[int, frozenset[str] | None] = field(
        default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str) -> "ModuleContext":
        """Parse ``source`` (raises :class:`SyntaxError` on bad input)."""
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree,
                   scope=_scope_of(path),
                   _suppressions=_scan_suppressions(source))

    # -- scope helpers ---------------------------------------------------
    def in_package(self, *packages: str) -> bool:
        """True when the module lives under one of the given repro
        subpackages, or when the module is outside repro entirely
        (fixtures are always in scope)."""
        if not self.scope:
            return True
        return self.scope[0] in packages

    # -- suppression helpers --------------------------------------------
    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when ``line`` carries ``# repro: ignore`` for ``rule``.

        ``# repro: ignore`` with no rule list silences every rule on the
        line; ``# repro: ignore[RPR001,RPR005]`` silences only those.
        """
        if line not in self._suppressions:
            return False
        rules = self._suppressions[line]
        return rules is None or rule in rules

    def suppressed_lines(self) -> dict[int, frozenset[str] | None]:
        """Line -> suppressed rule set (``None`` = all rules)."""
        return dict(self._suppressions)

    # -- AST helpers -----------------------------------------------------
    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Every function/method definition in the module, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node


def _scope_of(path: str) -> tuple[str, ...]:
    parts = PurePosixPath(path.replace("\\", "/")).parts
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return tuple(parts[index + 1:])
    return ()


def _scan_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    suppressions: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            parsed = frozenset(
                part.strip().upper()
                for part in rules.split(",") if part.strip()
            )
            # An explicit empty list (``ignore[]``) suppresses nothing.
            suppressions[lineno] = parsed if parsed else frozenset()
    return suppressions
