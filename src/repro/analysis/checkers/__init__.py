"""Rule implementations; importing this package registers every checker.

Rule catalogue (see ``docs/STATIC_ANALYSIS.md`` for rationale):

========  =====================  ==============================================
Rule      Name                   Checks
========  =====================  ==============================================
RPR001    dewey-immutable        Dewey addresses stay immutable tuples
RPR002    float-distance-eq      no ``==``/``!=`` on distances off-sentinel
RPR003    exception-taxonomy     only ``repro.exceptions`` raised; no bare
                                 ``except:``
RPR004    determinism            no unseeded RNG / wall-clock in core paths
RPR005    no-assert              no control-flow ``assert`` in library code
RPR006    obs-naming             metric/span names follow the dotted style
RPR007    mutable-default        no mutable default argument values
RPR008    all-consistency        ``__all__`` entries resolve to module names
RPR009    hotpath-distance       no tuple-Dewey distance math in core hot
                                 paths outside the arena/fallback modules
RPR010    obs-layer-naming       metric/span names use a registered
                                 ``layer.operation`` prefix
RPR011    guarded-by             ``# guarded by:`` attributes only touched
                                 with the declared lock held
RPR012    lock-order             nested lock acquisitions form no ordering
                                 cycle (potential deadlock)
RPR013    shared-mutable         shared mutable containers declare a
                                 discipline (Final / guarded-by / immutable)
========  =====================  ==============================================
"""

from __future__ import annotations

from repro.analysis.checkers.allexports import AllConsistencyChecker
from repro.analysis.checkers.asserts import NoAssertChecker
from repro.analysis.checkers.concurrency import (
    GuardedByChecker,
    LockOrderChecker,
    SharedMutableChecker,
)
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.dewey import DeweyImmutableChecker
from repro.analysis.checkers.exceptions import ExceptionTaxonomyChecker
from repro.analysis.checkers.floatcmp import FloatDistanceEqChecker
from repro.analysis.checkers.hotpath import HotPathDistanceChecker
from repro.analysis.checkers.mutabledefaults import MutableDefaultChecker
from repro.analysis.checkers.obsnames import ObsNamingChecker

__all__ = [
    "AllConsistencyChecker",
    "DeterminismChecker",
    "DeweyImmutableChecker",
    "ExceptionTaxonomyChecker",
    "FloatDistanceEqChecker",
    "GuardedByChecker",
    "HotPathDistanceChecker",
    "LockOrderChecker",
    "MutableDefaultChecker",
    "NoAssertChecker",
    "ObsNamingChecker",
    "SharedMutableChecker",
]
