"""RPR004 — determinism in the paper-critical and benchmark paths.

Reproduced figures and the perf-gate (PR 2) both assume that running
the same scenario twice does the same work: corpora and ontologies are
generated from seeded ``random.Random`` instances, and the bench
runner's noise gating keys on deterministic work counters.  One call to
the *module-level* ``random.*`` functions (the shared unseeded global
RNG) or to wall-clock time in ``core/``, ``ontology/``, or ``bench/``
breaks that silently.

* ``random.random()``/``choice``/``shuffle``/... — forbidden; construct
  a ``random.Random(seed)`` instance instead.
* ``time.time()``, ``datetime.now()``, ``date.today()``, ``utcnow()`` —
  forbidden in scoped packages (wall-clock belongs to ``obs``).
* ``time.perf_counter()`` — allowed only where the reading feeds
  telemetry: the enclosing function must reference a telemetry sink
  (``tracer``/``telemetry``/``obs``/``span``/``record*``/``observer``).
  Checked in ``core/`` and ``ontology/`` (the bench runner's whole job
  is timing, so ``bench/`` is exempt from this sub-rule).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker, call_name
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_GLOBAL_RNG_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "seed",
})

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "datetime.now", "datetime.datetime.now",
    "datetime.utcnow", "datetime.datetime.utcnow", "date.today",
    "datetime.date.today", "datetime.today",
})

_TELEMETRY_MARKERS = frozenset({
    "tracer", "telemetry", "obs", "observer", "observability", "span",
    "record", "record_io", "record_probe", "record_query", "observe_query",
})

_SCOPED_PACKAGES = ("core", "ontology", "bench")
_PERF_COUNTER_PACKAGES = ("core", "ontology")


def _references_telemetry(function: ast.AST) -> bool:
    # Private-attribute spellings (``self._obs``, ``self._span``) count:
    # leading underscores are stripped before matching.
    for node in ast.walk(function):
        if isinstance(node, ast.Name) \
                and node.id.lstrip("_") in _TELEMETRY_MARKERS:
            return True
        if isinstance(node, ast.Attribute) \
                and node.attr.lstrip("_") in _TELEMETRY_MARKERS:
            return True
    return False


@register
class DeterminismChecker(BaseChecker):
    rule = "RPR004"
    name = "determinism"
    description = ("no unseeded random.* or wall-clock calls in core/, "
                   "ontology/, or bench/; perf_counter only feeding "
                   "telemetry")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for nondeterminism in scoped packages."""
        if not context.in_package(*_SCOPED_PACKAGES):
            return
        check_perf_counter = context.in_package(*_PERF_COUNTER_PACKAGES)
        telemetry_ok = {
            function: _references_telemetry(function)
            for function in context.functions()
        }
        yield from self._walk(context.tree, context,
                              check_perf_counter=check_perf_counter,
                              telemetry_ok=telemetry_ok,
                              enclosing_allows_timing=False)

    def _walk(self, node: ast.AST, context: ModuleContext, *,
              check_perf_counter: bool,
              telemetry_ok: dict[ast.FunctionDef | ast.AsyncFunctionDef, bool],
              enclosing_allows_timing: bool) -> Iterator[Finding]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            enclosing_allows_timing = telemetry_ok.get(node, False)
        if isinstance(node, ast.Call):
            yield from self._check_call(
                node, context,
                check_perf_counter=check_perf_counter,
                enclosing_allows_timing=enclosing_allows_timing)
        for child in ast.iter_child_nodes(node):
            yield from self._walk(
                child, context,
                check_perf_counter=check_perf_counter,
                telemetry_ok=telemetry_ok,
                enclosing_allows_timing=enclosing_allows_timing)

    def _check_call(self, node: ast.Call, context: ModuleContext, *,
                    check_perf_counter: bool,
                    enclosing_allows_timing: bool) -> Iterator[Finding]:
        name = call_name(node.func)
        if name is None:
            return
        if name.startswith("random.") \
                and name.split(".", 1)[1] in _GLOBAL_RNG_FUNCS:
            yield self.finding(
                context, node,
                f"call to the unseeded global RNG ({name}); use a seeded "
                "random.Random(seed) instance")
        elif name in _WALL_CLOCK_CALLS:
            yield self.finding(
                context, node,
                f"wall-clock call {name}() in a deterministic path; "
                "wall time belongs to the obs layer")
        elif check_perf_counter \
                and name in ("time.perf_counter", "time.perf_counter_ns") \
                and not enclosing_allows_timing:
            yield self.finding(
                context, node,
                "perf_counter outside a telemetry context; timing "
                "readings must feed a tracer span or QueryTelemetry")
