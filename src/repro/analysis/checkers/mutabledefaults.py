"""RPR007 — no mutable default argument values.

A ``def f(cache={})`` default is created once at function definition and
shared across calls; in a library that memoizes Dewey address tuples and
caches engine state, a leaked shared default is a cross-query state bug.
Use ``None`` and materialize inside the function.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "Counter",
    "OrderedDict", "deque",
})


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _MUTABLE_FACTORIES
    return False


@register
class MutableDefaultChecker(BaseChecker):
    rule = "RPR007"
    name = "mutable-default"
    description = "no mutable default argument values (shared across calls)"

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for mutable default values."""
        for function in context.functions():
            args = function.args
            defaults = list(args.defaults) + [
                default for default in args.kw_defaults if default is not None]
            for default in defaults:
                if _is_mutable_literal(default):
                    yield self.finding(
                        context, default,
                        f"mutable default in {function.name}(); defaults "
                        "are evaluated once and shared — default to None")
