"""Shared helpers for the rule implementations."""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding


class BaseChecker:
    """Common plumbing: subclasses set ``rule``/``name``/``description``
    and implement ``check``."""

    rule = "RPR000"
    name = "base"
    description = "abstract base checker"

    def finding(self, context: ModuleContext, node: ast.AST,
                message: str) -> Finding:
        """A finding anchored at ``node``'s location."""
        return Finding(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule,
            message=message,
        )


def call_name(node: ast.expr) -> str | None:
    """Dotted name of a call target (``a.b.c`` -> ``"a.b.c"``), else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def is_infinity_sentinel(node: ast.expr) -> bool:
    """True for the distance sentinels: ``INFINITY``, ``math.inf``,
    ``float("inf")`` / ``float("-inf")``, or a ``*.INFINITY`` attribute."""
    if isinstance(node, ast.Name) and node.id == "INFINITY":
        return True
    if isinstance(node, ast.Attribute):
        if node.attr == "INFINITY":
            return True
        if node.attr == "inf" and isinstance(node.value, ast.Name) \
                and node.value.id == "math":
            return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "float" and len(node.args) == 1:
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value.lower().lstrip("+-") == "inf"
    return False


def annotation_is(annotation: ast.expr | None, type_name: str) -> bool:
    """True when an annotation names ``type_name`` directly (``DeweyAddress``
    or ``types.DeweyAddress``), including the string-literal form."""
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == type_name
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == type_name
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        return annotation.value.split(".")[-1].strip() == type_name
    return False
