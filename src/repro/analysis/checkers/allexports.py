"""RPR008 — ``__all__`` stays consistent with the module's bindings.

Every package re-exports its public surface through ``__all__``; a
stale entry makes ``from repro.x import *`` raise at import time and
breaks the API-surface tests only when the specific symbol is touched.
The checker verifies each ``__all__`` entry is a string bound at module
level (def/class/import/assignment) and flags duplicates.

``from x import *`` makes the binding set unknowable statically, so
modules containing a star import are skipped.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register


def _bound_names(module: ast.Module) -> tuple[set[str], bool]:
    """All names bound at module level, plus a star-import flag.

    Descends into ``if``/``try``/``for``/``while``/``with`` blocks
    (conditional definitions still bind at module level) but not into
    function or class bodies.
    """
    names: set[str] = set()
    has_star = False
    stack: list[ast.stmt] = list(module.body)
    while stack:
        statement = stack.pop()
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
            names.add(statement.name)
            continue  # do not descend into the body
        if isinstance(statement, ast.Import):
            for alias in statement.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(statement, ast.ImportFrom):
            for alias in statement.names:
                if alias.name == "*":
                    has_star = True
                else:
                    names.add(alias.asname or alias.name)
        elif isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                    ast.For, ast.AsyncFor)):
            targets: list[ast.expr]
            if isinstance(statement, ast.Assign):
                targets = list(statement.targets)
            elif isinstance(statement, (ast.For, ast.AsyncFor)):
                targets = [statement.target]
            else:
                targets = [statement.target]
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        names.add(node.id)
        for field in ("body", "orelse", "finalbody", "handlers"):
            children = getattr(statement, field, None)
            if children:
                for child in children:
                    if isinstance(child, ast.ExceptHandler):
                        stack.extend(child.body)
                    elif isinstance(child, ast.stmt):
                        stack.append(child)
    return names, has_star


def _all_assignment(module: ast.Module) -> ast.Assign | ast.AnnAssign | None:
    for statement in module.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return statement
        elif isinstance(statement, ast.AnnAssign) \
                and isinstance(statement.target, ast.Name) \
                and statement.target.id == "__all__":
            return statement
    return None


@register
class AllConsistencyChecker(BaseChecker):
    rule = "RPR008"
    name = "all-consistency"
    description = ("every __all__ entry is a string bound at module level; "
                   "no duplicates")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for stale or duplicate __all__ entries."""
        assignment = _all_assignment(context.tree)
        if assignment is None or assignment.value is None:
            return
        value = assignment.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return  # computed __all__ — not statically checkable
        bound, has_star = _bound_names(context.tree)
        if has_star:
            return
        seen: set[str] = set()
        for element in value.elts:
            if not (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                yield self.finding(
                    context, element,
                    "__all__ entries must be string literals")
                continue
            name = element.value
            if name in seen:
                yield self.finding(
                    context, element,
                    f"duplicate __all__ entry {name!r}")
            seen.add(name)
            if name not in bound:
                yield self.finding(
                    context, element,
                    f"__all__ exports {name!r} but the module never binds "
                    "it")
