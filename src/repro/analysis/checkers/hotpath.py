"""RPR009 — tuple-Dewey distance math belongs to the arena/fallback modules.

The packed arena (:mod:`repro.core.arena`) is the one hot-path home of
concept-pair distance computation: it interns Dewey addresses once and
serves every kernel from flat buffers plus a shared cache.  A stray
re-implementation of the Dewey-pair identity ``|p1| + |p2| - 2 * lcp``
— or a direct call to the reference
:func:`repro.ontology.distance.concept_distance_dewey` — inside the
``core``/``baselines`` hot paths silently reintroduces the per-query
tuple allocation the arena removed, without changing any result a test
would catch.  The checker flags both patterns outside the sanctioned
modules (the arena itself, the D-Radix tuple fallback, and the pairwise
baseline's cone fallback).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_ALLOWED_MODULES = frozenset({
    ("core", "arena"),      # the packed kernels themselves
    ("core", "dradix"),     # the D-Radix tuple fallback DRC builds on
    ("core", "radix"),      # structural LCP use during path insertion
    ("baselines", "pairwise"),  # the sanctioned quadratic fallback
})

_REFERENCE_KERNEL = "concept_distance_dewey"
_LCP_HELPER = "common_prefix_length"


def _is_lcp_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == _LCP_HELPER
    return isinstance(func, ast.Attribute) and func.attr == _LCP_HELPER


def _is_two_times_lcp(node: ast.expr) -> bool:
    """``2 * common_prefix_length(...)`` in either operand order."""
    if not isinstance(node, ast.BinOp) or not isinstance(node.op, ast.Mult):
        return False
    left, right = node.left, node.right
    for constant, call in ((left, right), (right, left)):
        if isinstance(constant, ast.Constant) and constant.value == 2 \
                and _is_lcp_call(call):
            return True
    return False


@register
class HotPathDistanceChecker(BaseChecker):
    rule = "RPR009"
    name = "hotpath-distance"
    description = ("tuple-Dewey distance computation in core hot paths "
                   "outside the arena/fallback modules")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for inline Dewey-pair distance computation."""
        if not context.in_package("core", "baselines"):
            return
        scope = context.scope
        if scope:
            module = (scope[0], scope[-1].removesuffix(".py"))
            if module in _ALLOWED_MODULES:
                return
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                func = node.func
                named = (func.id if isinstance(func, ast.Name)
                         else func.attr if isinstance(func, ast.Attribute)
                         else None)
                if named == _REFERENCE_KERNEL:
                    yield self.finding(
                        context, node,
                        "direct concept_distance_dewey call in a hot "
                        "path; route through the packed arena "
                        "(repro.core.arena.PackedDeweyArena) or a "
                        "sanctioned fallback module")
            elif isinstance(node, ast.BinOp) \
                    and isinstance(node.op, ast.Sub) \
                    and _is_two_times_lcp(node.right):
                yield self.finding(
                    context, node,
                    "inline Dewey-pair distance identity "
                    "(|p1| + |p2| - 2*lcp) in a hot path; use the "
                    "packed arena kernels instead of recomputing from "
                    "address tuples")
