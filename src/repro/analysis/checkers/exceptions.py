"""RPR003 — library code raises only the ``repro.exceptions`` taxonomy.

Callers are promised a single catchable base (:class:`repro.exceptions.
ReproError`); a raw ``raise Exception(...)`` escapes that contract, and
a bare ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` and
hides taxonomy errors.  Builtin *programming-error* types (``TypeError``
on bad argument types, ``ValueError`` on bad scalar parameters,
``NotImplementedError`` on abstract methods) remain allowed — the
taxonomy covers *domain* failures, not API misuse.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker, call_name
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_FORBIDDEN_RAISES = frozenset({"Exception", "BaseException"})


def _raised_name(node: ast.Raise) -> str | None:
    exc = node.exc
    if exc is None:
        return None  # re-raise of the active exception is fine
    if isinstance(exc, ast.Call):
        return call_name(exc.func)
    return call_name(exc)


@register
class ExceptionTaxonomyChecker(BaseChecker):
    rule = "RPR003"
    name = "exception-taxonomy"
    description = ("no `raise Exception`/`raise BaseException` and no bare "
                   "`except:` — use the repro.exceptions taxonomy")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for generic raises and bare excepts."""
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Raise):
                name = _raised_name(node)
                if name is not None and name in _FORBIDDEN_RAISES:
                    yield self.finding(
                        context, node,
                        f"raise of generic {name}; raise a typed error "
                        "from repro.exceptions instead")
            elif isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    context, node,
                    "bare `except:` swallows SystemExit/KeyboardInterrupt; "
                    "catch ReproError (or a narrower type)")
