"""RPR006/RPR010 — metric and span names follow the registered convention.

The obs layer (PR 1) established dotted lower_snake paths for every
instrument and span name (``knds.nodes_visited``, ``engine.query``,
``index.postings``); the Prometheus exporter rewrites dots to
underscores, so any other character silently mangles the exported
series, and dashboards key on exact names.  RPR006 validates every
*literal* first argument to ``span``/``record``/``record_io``/
``counter``/``gauge``/``histogram`` calls; for f-strings the literal
fragments are validated (the interpolated holes are trusted).
Non-literal names (variables) are skipped — they are covered at the
call sites that build them.

RPR010 layers the ``layer.operation`` structure requirement on top:
the flight recorder's per-layer self-time rollup keys on the segment
before the first dot, so a single-segment name like ``"query"`` would
silently become its own layer.  It fires only on otherwise-valid plain
string literals without a dot (RPR006 already owns malformed names,
and f-strings may interpolate the missing segments).  It also vets the
layer segment itself against the known-layer registry below: a typo
like ``"profilr.samples"`` would otherwise mint a phantom layer that
no dashboard, rollup, or bench counter ever reads.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")
_FRAGMENT_RE = re.compile(r"^[a-z0-9_.]*$")

_SINKS = frozenset({
    "span", "record", "record_io", "record_probe",
    "counter", "gauge", "histogram",
})

#: Every layer prefix a metric or span name may legitimately start
#: with.  Grown deliberately: adding a subsystem means adding its layer
#: here in the same change that introduces its first instrument, which
#: is exactly the review moment the rule exists to create.
_KNOWN_LAYERS = frozenset({
    "arena", "bench", "drc", "engine", "fullscan", "http", "index",
    "knds", "profiler", "query", "recorder", "resource", "sanitizer",
    "serve", "shard", "slo", "ta", "trace", "types",
})


def _literal_problem(arg: ast.expr) -> str | None:
    """Why a name argument violates the convention, or None if fine or
    not statically checkable."""
    if isinstance(arg, ast.Constant):
        if not isinstance(arg.value, str):
            # Not an obs call: `match.span(0)` and friends take ints.
            return None
        if not _NAME_RE.match(arg.value):
            return (f"name {arg.value!r} does not match the dotted "
                    "lower_snake convention (e.g. 'knds.nodes_visited')")
        return None
    if isinstance(arg, ast.JoinedStr):
        for piece in arg.values:
            if isinstance(piece, ast.Constant) \
                    and isinstance(piece.value, str) \
                    and not _FRAGMENT_RE.match(piece.value):
                return (f"f-string fragment {piece.value!r} breaks the "
                        "dotted lower_snake metric/span convention")
        return None
    return None


@register
class ObsNamingChecker(BaseChecker):
    rule = "RPR006"
    name = "obs-naming"
    description = ("metric/span names passed to repro.obs follow the "
                   "dotted lower_snake convention")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for malformed metric/span name literals."""
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SINKS
                    and node.args):
                continue
            first = node.args[0]
            # Only consider string-ish first arguments: `match.span()`
            # or `span(obj)` on unrelated objects must not fire.
            if not isinstance(first, (ast.Constant, ast.JoinedStr)):
                continue
            problem = _literal_problem(first)
            if problem is not None:
                yield self.finding(context, node, problem)


@register
class ObsLayerChecker(BaseChecker):
    rule = "RPR010"
    name = "obs-layer-naming"
    description = ("metric/span names are structured as layer.operation "
                   "with a registered layer prefix")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for metric/span literals whose layer is
        missing or unregistered."""
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SINKS
                    and node.args):
                continue
            first = node.args[0]
            # Plain string literals only: f-strings may interpolate the
            # layer or operation segment, and RPR006 owns malformed
            # names — this rule fires exactly on well-formed names that
            # lack a (known) layer prefix.
            if not (isinstance(first, ast.Constant)
                    and isinstance(first.value, str)):
                continue
            if not _NAME_RE.match(first.value):
                continue
            if "." not in first.value:
                yield self.finding(
                    context, node,
                    f"name {first.value!r} has no layer prefix; use "
                    "'layer.operation' (e.g. 'engine.query') so "
                    "per-layer rollups attribute it correctly")
                continue
            layer = first.value.split(".", 1)[0]
            if layer not in _KNOWN_LAYERS:
                yield self.finding(
                    context, node,
                    f"name {first.value!r} starts with unregistered "
                    f"layer {layer!r}; known layers are "
                    f"{', '.join(sorted(_KNOWN_LAYERS))} — fix the typo "
                    "or add the new layer to _KNOWN_LAYERS in "
                    "repro/analysis/checkers/obsnames.py")
