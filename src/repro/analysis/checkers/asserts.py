"""RPR005 — no ``assert`` for control flow in library code.

``python -O`` strips assert statements, so an invariant guarded only by
``assert`` silently stops being checked in optimized deployments — and
several of this library's invariants (single shared root, D-Radix LCP
structure) are load-bearing for result correctness.  Library code must
raise a typed error from :mod:`repro.exceptions` instead (for internal
invariants, :class:`repro.exceptions.InvariantError`).

The rule applies to everything ``repro lint`` scans; test suites are
simply not passed to the linter (pytest asserts are idiomatic there).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register


@register
class NoAssertChecker(BaseChecker):
    rule = "RPR005"
    name = "no-assert"
    description = ("no `assert` in library code (stripped under -O); "
                   "raise InvariantError or a typed ReproError")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield a finding for every `assert` statement."""
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    context, node,
                    "`assert` vanishes under python -O; raise "
                    "repro.exceptions.InvariantError (internal invariant) "
                    "or a typed ReproError (input validation)")
