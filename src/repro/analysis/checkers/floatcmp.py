"""RPR002 — no ``==``/``!=`` on float distances outside sentinel checks.

Distances in this library are sums of path lengths *divided* through
weighting and DRC tuning (Section 4.3), so they are floats subject to
representation error; the only exact comparisons the algorithms rely on
are against the :data:`repro.types.INFINITY` sentinel (and the exact
zero a self-distance produces).  Any other ``==``/``!=`` on a
distance-like value is a correctness smell — use ``<=`` bounds or
``math.isclose``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker, is_infinity_sentinel
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_DISTANCE_MARKERS = ("distance", "dist")


def _distance_name(node: ast.expr) -> str | None:
    """The distance-ish identifier a comparand refers to, if any."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Call):
        return _distance_name(node.func)
    else:
        return None
    lowered = name.lower()
    if any(marker in lowered for marker in _DISTANCE_MARKERS):
        return name
    return None


def _is_exact_zero(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value == 0


@register
class FloatDistanceEqChecker(BaseChecker):
    rule = "RPR002"
    name = "float-distance-eq"
    description = ("no ==/!= on float distances except against the "
                   "INFINITY sentinel (or exact 0.0)")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for exact equality on distance values."""
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, comparands, comparands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                name = _distance_name(left) or _distance_name(right)
                if name is None:
                    continue
                if is_infinity_sentinel(left) or is_infinity_sentinel(right):
                    continue
                if _is_exact_zero(left) or _is_exact_zero(right):
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    context, node,
                    f"exact {symbol} on float distance {name!r}; compare "
                    "against the INFINITY sentinel, use bounds, or "
                    "math.isclose")
