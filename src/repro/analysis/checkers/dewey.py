"""RPR001 — Dewey addresses are immutable tuples (Section 3.1).

The whole D-Radix construction keys on Dewey addresses being hashable,
lexicographically comparable tuples: they are dict keys in the index,
sorted-merge inputs in DRC, and prefix-composed in the address closure.
A ``list``-typed address breaks hashing at runtime and ordering
guarantees silently.  The checker tracks names annotated as
``DeweyAddress`` and flags:

* binding a list value to a ``DeweyAddress``-annotated name;
* in-place mutation calls (``append``, ``sort``, ...) on a tracked name;
* subscript assignment / deletion on a tracked name;
* augmented assignment on a tracked name.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker, annotation_is
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "clear", "sort",
    "reverse", "__setitem__",
})

_LIST_FACTORIES = frozenset({"list", "bytearray"})


def _is_list_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.ListComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _LIST_FACTORIES)


class _FunctionScan:
    """Names annotated as DeweyAddress inside one function (plus module
    level, which uses the same walk with the module node)."""

    def __init__(self, root: ast.AST) -> None:
        self.tracked: set[str] = set()
        for node in ast.walk(root):
            if isinstance(node, ast.AnnAssign) \
                    and annotation_is(node.annotation, "DeweyAddress") \
                    and isinstance(node.target, ast.Name):
                self.tracked.add(node.target.id)
            elif isinstance(node, ast.arg) \
                    and annotation_is(node.annotation, "DeweyAddress"):
                self.tracked.add(node.arg)


@register
class DeweyImmutableChecker(BaseChecker):
    rule = "RPR001"
    name = "dewey-immutable"
    description = ("DeweyAddress values must stay immutable tuples — no "
                   "list typing or in-place mutation")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for list-typed or mutated Dewey addresses."""
        scan = _FunctionScan(context.tree)
        tracked = scan.tracked
        for node in ast.walk(context.tree):
            if isinstance(node, ast.AnnAssign) \
                    and annotation_is(node.annotation, "DeweyAddress") \
                    and node.value is not None and _is_list_value(node.value):
                yield self.finding(
                    context, node,
                    "DeweyAddress bound to a list value; addresses are "
                    "immutable tuples (repro.types.DeweyAddress)")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in tracked:
                yield self.finding(
                    context, node,
                    f"in-place mutation '{node.func.attr}' of Dewey "
                    f"address {node.func.value.id!r}; build a new tuple "
                    "instead")
            elif isinstance(node, (ast.Assign, ast.Delete)):
                targets = node.targets
                for target in targets:
                    if isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in tracked:
                        yield self.finding(
                            context, target,
                            f"item assignment on Dewey address "
                            f"{target.value.id!r}; addresses are immutable "
                            "tuples")
            elif isinstance(node, ast.AugAssign) \
                    and isinstance(node.target, ast.Name) \
                    and node.target.id in tracked \
                    and _is_list_value(node.value):
                yield self.finding(
                    context, node,
                    f"augmented assignment of a list into Dewey address "
                    f"{node.target.id!r}")
