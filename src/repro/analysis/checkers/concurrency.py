"""RPR011/RPR012/RPR013 — the concurrency lint family.

The serve path (PR 4) and the shared arena (PR 5) put 15+ locks in the
hot path; nothing but reviewer discipline kept a new code path from
touching ``_entries`` without ``_lock`` or nesting two locks in the
opposite order of another path.  These rules turn the discipline into
annotations the linter can prove (see ``repro.analysis.concurrency``
for the grammar and docs/STATIC_ANALYSIS.md for the catalogue entry):

* **RPR011 guarded-by** — every access to an attribute declared
  ``# guarded by: <lock>`` must happen under ``with self.<lock>`` (the
  shared side suffices for reads, writes need the exclusive side) or
  inside a method carrying a ``# holds: <lock>`` contract; intra-class
  calls to contract methods are themselves checked one level deep.
* **RPR012 lock-order** — syntactically nested acquisitions across the
  whole tree form a global graph; any cycle (including a self-edge) is
  a potential deadlock, reported once with its witnessing sites.
* **RPR013 shared-mutable** — module-level mutable containers, and
  mutable ``__init__`` attributes in modules that hand work to
  ``ThreadPoolExecutor``/``copy_context``, must declare a discipline:
  ``Final`` (read-only), ``# guarded by:``, or an immutable type.

The runtime companion (``repro.analysis.runtime.LockMonitor``) checks
the same discipline dynamically and diffs its observed acquisition
order against RPR012's static graph.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.checkers._base import BaseChecker
from repro.analysis.concurrency import (
    EXCLUSIVE,
    SHARED,
    AcquisitionGraph,
    ClassModel,
    acquisition_of,
    build_parent_map,
    collect_acquisitions,
    extract_class_models,
    guard_on_lines,
    is_write_access,
    merge_mode,
)
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import register

CONCURRENCY_RULES = ("RPR011", "RPR012", "RPR013")
"""The rule ids behind ``repro lint --concurrency``."""


@register
class GuardedByChecker(BaseChecker):
    rule = "RPR011"
    name = "guarded-by"
    description = ("attributes declared '# guarded by: <lock>' are only "
                   "touched with the lock held")

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for guarded-attribute accesses outside the
        declared lock."""
        models = extract_class_models(context)
        parents = build_parent_map(context.tree)
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            model = models.get(node.name)
            if model is None or not model.checkable:
                continue
            for stmt in node.body:
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                if stmt.name == "__init__":
                    # Construction happens-before publication; guarded
                    # attributes may be initialised lock-free.
                    continue
                held = {lock: EXCLUSIVE
                        for lock in model.holds.get(stmt.name, ())}
                yield from self._walk_body(context, model, parents,
                                           stmt.body, held)

    def _walk_body(self, context: ModuleContext, model: ClassModel,
                   parents: dict[ast.AST, ast.AST],
                   body: list[ast.stmt],
                   held: dict[str, str]) -> Iterator[Finding]:
        for stmt in body:
            yield from self._visit(context, model, parents, stmt, held)

    def _visit(self, context: ModuleContext, model: ClassModel,
               parents: dict[ast.AST, ast.AST], node: ast.AST,
               held: dict[str, str]) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            # A nested class is its own locking domain.
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            current = dict(held)
            for item in node.items:
                # The acquisition expression itself runs before the
                # lock is held.
                yield from self._visit(context, model, parents,
                                       item.context_expr, current)
                parsed = acquisition_of(item.context_expr)
                if parsed is not None:
                    attr, mode, is_self = parsed
                    if is_self:
                        current[attr] = merge_mode(current.get(attr), mode)
            for stmt in node.body:
                yield from self._visit(context, model, parents, stmt,
                                       current)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Nested callables inherit the held set: the dominant
            # pattern is a predicate or callback defined (and run)
            # under the lock — ``condition.wait_for(lambda: ...)``.
            for child in ast.iter_child_nodes(node):
                yield from self._visit(context, model, parents, child, held)
            return
        if isinstance(node, ast.Call):
            yield from self._check_contract_call(context, model, node, held)
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" \
                and node.attr in model.guards:
            yield from self._check_access(context, model, parents, node,
                                          held)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(context, model, parents, child, held)

    def _check_access(self, context: ModuleContext, model: ClassModel,
                      parents: dict[ast.AST, ast.AST],
                      node: ast.Attribute,
                      held: dict[str, str]) -> Iterator[Finding]:
        guard = model.guards[node.attr]
        write = is_write_access(node, parents)
        mode = held.get(guard.lock)
        if write:
            if mode == EXCLUSIVE:
                return
            if mode == SHARED:
                yield self.finding(
                    context, node,
                    f"attribute '{node.attr}' is guarded by "
                    f"'{guard.lock}' but is written while holding only "
                    f"the shared (read) side; writes need 'with "
                    f"self.{guard.lock}.write()'")
                return
            yield self.finding(
                context, node,
                f"attribute '{node.attr}' is guarded by '{guard.lock}' "
                f"but is written without it; wrap the access in 'with "
                f"self.{guard.lock}' or declare the method "
                f"'# holds: {guard.lock}'")
            return
        if guard.writes_only or mode is not None:
            return
        yield self.finding(
            context, node,
            f"attribute '{node.attr}' is guarded by '{guard.lock}' but "
            f"is read without it; hold the lock (the shared side "
            f"suffices), declare the method '# holds: {guard.lock}', "
            f"or relax the guard to '(writes)' if lock-free reads are "
            f"sanctioned")

    def _check_contract_call(self, context: ModuleContext,
                             model: ClassModel, node: ast.Call,
                             held: dict[str, str]) -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in model.holds):
            return
        missing = sorted(lock for lock in model.holds[func.attr]
                         if lock not in held)
        if missing:
            yield self.finding(
                context, node,
                f"method '{func.attr}' declares '# holds: "
                f"{', '.join(sorted(model.holds[func.attr]))}' but is "
                f"called without {', '.join(repr(m) for m in missing)} "
                f"held")


@register
class LockOrderChecker(BaseChecker):
    rule = "RPR012"
    name = "lock-order"
    description = ("nested lock acquisitions across the tree form no "
                   "ordering cycle (potential deadlock)")

    def __init__(self) -> None:
        self._graph = AcquisitionGraph()

    @property
    def graph(self) -> AcquisitionGraph:
        """The acquisition graph accumulated so far (exposed for the
        ``repro locks`` CLI and the sanitizer diff)."""
        return self._graph

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Accumulate this module's acquisitions; findings are global
        and reported from :meth:`finish`."""
        collect_acquisitions(context, self._graph)
        return iter(())

    def finish(self) -> Iterator[Finding]:
        """Yield one finding per self-edge site and one per ordering
        cycle, witnessed by acquisition sites."""
        for node, sites in sorted(self._graph.self_edges.items()):
            for site in sorted(sites, key=lambda s: (s.path, s.line)):
                yield Finding(
                    path=site.path, line=site.line, col=0, rule=self.rule,
                    message=(
                        f"nested acquisition of '{node.qualified}' while "
                        f"it is already held — self-deadlock for a "
                        f"non-reentrant lock (and a read-to-write upgrade "
                        f"deadlock for reader-writer locks)"))
        for component in self._graph.cycles():
            witnesses = self._graph.cycle_edges(component)
            description = "; ".join(
                f"{outer.qualified} -> {inner.qualified} at {site}"
                for outer, inner, site in witnesses)
            anchor = min((site for _, _, site in witnesses),
                         key=lambda s: (s.path, s.line))
            names = ", ".join(node.qualified for node in component)
            yield Finding(
                path=anchor.path, line=anchor.line, col=0, rule=self.rule,
                message=(
                    f"lock-order cycle between {names}: {description} — "
                    f"two threads taking these locks in opposite orders "
                    f"can deadlock; pick one global acquisition order"))


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)

_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "OrderedDict", "defaultdict", "deque",
    "bytearray", "Counter",
})


def _mutable_kind(value: ast.expr | None) -> str | None:
    """The container kind when ``value`` builds a mutable container."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name in _MUTABLE_CALLS:
            return name
    return None


def _is_final(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        return _is_final(annotation.value)
    if isinstance(annotation, ast.Name):
        return annotation.id == "Final"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "Final"
    if isinstance(annotation, ast.Constant) \
            and isinstance(annotation.value, str):
        return "Final" in annotation.value
    return False


@register
class SharedMutableChecker(BaseChecker):
    rule = "RPR013"
    name = "shared-mutable"
    description = ("shared mutable containers declare a discipline: "
                   "Final, guarded-by, or an immutable type")

    _PACKAGES = ("core", "serve", "obs", "index", "baselines")
    _EXECUTOR_NAMES = frozenset({"ThreadPoolExecutor", "copy_context"})

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for undisciplined shared mutables."""
        if not context.in_package(*self._PACKAGES):
            return
        lines = context.source.splitlines()
        yield from self._module_level(context, lines)
        if self._uses_executor(context.tree):
            yield from self._executor_attrs(context, lines)

    def _module_level(self, context: ModuleContext,
                      lines: list[str]) -> Iterator[Finding]:
        for stmt in context.tree.body:
            if isinstance(stmt, ast.Assign):
                names = [t.id for t in stmt.targets
                         if isinstance(t, ast.Name)]
                annotation: ast.expr | None = None
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                names = [stmt.target.id]
                annotation = stmt.annotation
            else:
                continue
            names = [name for name in names if name != "__all__"]
            if not names or _is_final(annotation):
                continue
            kind = _mutable_kind(getattr(stmt, "value", None))
            if kind is None:
                continue
            if guard_on_lines(lines, stmt.lineno,
                               stmt.end_lineno or stmt.lineno):
                continue
            for name in names:
                yield self.finding(
                    context, stmt,
                    f"module-level mutable {kind} '{name}' is shared "
                    f"across every importing thread with no declared "
                    f"discipline; annotate it Final (read-only), declare "
                    f"'# guarded by: <lock>', or use an immutable type")

    def _uses_executor(self, tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) \
                    and node.id in self._EXECUTOR_NAMES:
                return True
            if isinstance(node, ast.Attribute) \
                    and node.attr in self._EXECUTOR_NAMES:
                return True
            if isinstance(node, ast.ImportFrom) and any(
                    alias.name in self._EXECUTOR_NAMES
                    for alias in node.names):
                return True
        return False

    def _executor_attrs(self, context: ModuleContext,
                        lines: list[str]) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not (isinstance(stmt, ast.FunctionDef)
                        and stmt.name == "__init__"):
                    continue
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Assign):
                        targets: list[ast.expr] = list(sub.targets)
                        annotation = None
                    elif isinstance(sub, ast.AnnAssign):
                        targets = [sub.target]
                        annotation = sub.annotation
                    else:
                        continue
                    if _is_final(annotation):
                        continue
                    kind = _mutable_kind(getattr(sub, "value", None))
                    if kind is None:
                        continue
                    if guard_on_lines(lines, sub.lineno,
                                       sub.end_lineno or sub.lineno):
                        continue
                    for target in targets:
                        if isinstance(target, ast.Attribute) \
                                and isinstance(target.value, ast.Name) \
                                and target.value.id == "self":
                            yield self.finding(
                                context, sub,
                                f"attribute '{target.attr}' is a mutable "
                                f"{kind} in a module that hands work to "
                                f"ThreadPoolExecutor/copy_context; "
                                f"declare '# guarded by: <lock>', "
                                f"annotate Final, or use an immutable "
                                f"container")
