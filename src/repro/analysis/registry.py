"""The pluggable checker registry behind ``repro lint``.

A checker is a class with a ``rule`` id (``RPR###``), a short ``name``,
a one-line ``description``, and a ``check(context)`` method yielding
:class:`~repro.analysis.findings.Finding` objects.  Checkers register
themselves with the :func:`register` decorator at import time; the CLI
and engine discover them through :func:`all_checkers`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Protocol, TypeVar

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.exceptions import ReproError


class AnalysisError(ReproError):
    """A static-analysis configuration problem (unknown rule id, checker
    registered twice)."""


class Checker(Protocol):
    """Structural interface every registered checker satisfies.

    Checkers may additionally define ``finish() -> Iterator[Finding]``:
    the engine reuses one instance across every file of a run, so a
    cross-module rule can accumulate state in ``check`` and report
    whole-run findings (e.g. RPR012's lock-acquisition cycles) from
    ``finish`` after the last file.
    """

    rule: str
    name: str
    description: str

    def check(self, context: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        ...


_REGISTRY: dict[str, type[Checker]] = {}

_CheckerT = TypeVar("_CheckerT", bound="type[Checker]")


def register(checker_cls: _CheckerT) -> _CheckerT:
    """Class decorator: add a checker to the global registry."""
    rule = checker_cls.rule
    existing = _REGISTRY.get(rule)
    if existing is not None and existing is not checker_cls:
        raise AnalysisError(
            f"rule {rule} registered twice "
            f"({existing.__name__} and {checker_cls.__name__})")
    _REGISTRY[rule] = checker_cls
    return checker_cls


def all_checkers() -> list[Checker]:
    """Fresh instances of every registered checker, sorted by rule id."""
    _ensure_loaded()
    return [_REGISTRY[rule]() for rule in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """Registered rule ids, sorted (``["RPR001", ...]``)."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def resolve_rules(spec: Iterable[str]) -> set[str]:
    """Expand a ``--select``/``--ignore`` list into rule ids.

    Accepts rule ids (case-insensitive) and checker names
    (``dewey-immutable``); raises :class:`AnalysisError` for anything
    unknown so typos fail loudly instead of silently selecting nothing.
    """
    _ensure_loaded()
    by_name = {cls.name: rule for rule, cls in _REGISTRY.items()}
    resolved: set[str] = set()
    for item in spec:
        token = item.strip()
        if not token:
            continue
        rule = token.upper()
        if rule in _REGISTRY:
            resolved.add(rule)
        elif token.lower() in by_name:
            resolved.add(by_name[token.lower()])
        else:
            raise AnalysisError(
                f"unknown rule {token!r} (known: {', '.join(sorted(_REGISTRY))})")
    return resolved


def _ensure_loaded() -> None:
    # Importing the checkers package runs every @register decorator.
    from repro.analysis import checkers  # noqa: F401
