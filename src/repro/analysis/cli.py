"""The ``repro lint`` subcommand.

Exit codes follow the convention of the other gating subcommands:

* ``0`` — no findings;
* ``1`` — usage or I/O error (bad rule id, missing path);
* ``2`` — findings were reported.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import TextIO

from repro.analysis.checkers.concurrency import CONCURRENCY_RULES
from repro.analysis.engine import lint_paths
from repro.analysis.findings import Finding
from repro.analysis.registry import AnalysisError, all_checkers

JSON_SCHEMA_VERSION = 1
"""Version of the ``--format json`` document layout."""

EXIT_CLEAN = 0
EXIT_USAGE = 1
EXIT_FINDINGS = 2


def build_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Domain-aware static analysis for the repro codebase "
                    "(see docs/STATIC_ANALYSIS.md for the rule catalogue)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids/names to run "
                             "(default: all)")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids/names to skip")
    parser.add_argument("--concurrency", action="store_true",
                        help="run (only) the concurrency rules "
                             "RPR011/RPR012/RPR013, or add them to "
                             "--select when both are given")
    parser.add_argument("--format", dest="fmt",
                        choices=["text", "json"], default="text",
                        help="report format (default: text)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _split(spec: str | None) -> list[str] | None:
    if spec is None:
        return None
    return [part for part in spec.split(",") if part.strip()]


def _print_rules(stream: TextIO) -> None:
    for checker in all_checkers():
        stream.write(
            f"{checker.rule}  {checker.name:<22} {checker.description}\n")


def render_json(findings: Sequence[Finding]) -> str:
    """The ``--format json`` document (stable schema, sorted findings)."""
    return json.dumps(
        {
            "version": JSON_SCHEMA_VERSION,
            "count": len(findings),
            "findings": [finding.to_dict() for finding in findings],
        },
        indent=2,
    )


def main(argv: Sequence[str] | None = None, *,
         stdout: TextIO | None = None,
         stderr: TextIO | None = None) -> int:
    """Entry point for ``repro lint``; returns a process exit code."""
    out = sys.stdout if stdout is None else stdout
    err = sys.stderr if stderr is None else stderr
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.list_rules:
        _print_rules(out)
        return EXIT_CLEAN
    select = _split(args.select)
    if args.concurrency:
        select = (select or []) + list(CONCURRENCY_RULES)
    try:
        findings = lint_paths(args.paths,
                              select=select,
                              ignore=_split(args.ignore))
    except (AnalysisError, FileNotFoundError, OSError) as error:
        err.write(f"error: {error}\n")
        return EXIT_USAGE
    if args.fmt == "json":
        out.write(render_json(findings) + "\n")
    else:
        for finding in findings:
            out.write(finding.format() + "\n")
        if findings:
            out.write(f"{len(findings)} finding"
                      f"{'s' if len(findings) != 1 else ''}\n")
        else:
            out.write("no problems found\n")
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    raise SystemExit(main())
