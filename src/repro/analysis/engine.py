"""File collection and checker execution for ``repro lint``.

:func:`lint_paths` walks files and directories, parses every ``*.py``
module, runs the selected checkers, filters findings through the
``# repro: ignore[...]`` suppression comments, and returns a stable
sorted list.  Unparseable files surface as :data:`PARSE_RULE` findings
rather than aborting the whole pass — a broken file is itself a finding.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Checker, all_checkers, resolve_rules

PARSE_RULE = "RPR000"
"""Pseudo-rule reported when a file cannot be parsed as Python."""

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache",
              "build", "dist"}


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of ``*.py`` files.

    Raises :class:`FileNotFoundError` for a path that does not exist, so
    ``repro lint sr`` (a typo) fails loudly instead of passing an empty
    tree.
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.is_file():
            files.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(files)


def select_checkers(select: Iterable[str] | None = None,
                    ignore: Iterable[str] | None = None) -> list[Checker]:
    """The checker instances a run should execute.

    ``select`` keeps only the listed rules; ``ignore`` then drops rules
    from that set.  Both accept rule ids or checker names.
    """
    checkers = all_checkers()
    if select is not None:
        keep = resolve_rules(select)
        checkers = [checker for checker in checkers if checker.rule in keep]
    if ignore is not None:
        drop = resolve_rules(ignore)
        checkers = [checker for checker in checkers
                    if checker.rule not in drop]
    return checkers


def lint_source(source: str, path: str = "<string>", *,
                select: Iterable[str] | None = None,
                ignore: Iterable[str] | None = None) -> list[Finding]:
    """Lint one in-memory module (the unit-test entry point)."""
    checkers = select_checkers(select, ignore)
    try:
        context = ModuleContext.from_source(source, path)
    except SyntaxError as error:
        return [_parse_finding(path, error)]
    findings = _run_checkers(context, checkers)
    findings.extend(_finish_checkers(checkers, {context.path: context}))
    return sorted(findings)


def lint_paths(paths: Sequence[str | Path], *,
               select: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None) -> list[Finding]:
    """Lint files/directories and return sorted, suppression-filtered
    findings."""
    checkers = select_checkers(select, ignore)
    findings: list[Finding] = []
    contexts: dict[str, ModuleContext] = {}
    for file_path in collect_files(paths):
        text = file_path.read_text(encoding="utf-8")
        try:
            context = ModuleContext.from_source(text, str(file_path))
        except SyntaxError as error:
            findings.append(_parse_finding(str(file_path), error))
            continue
        contexts[context.path] = context
        findings.extend(_run_checkers(context, checkers))
    findings.extend(_finish_checkers(checkers, contexts))
    return sorted(findings)


def _run_checkers(context: ModuleContext,
                  checkers: Sequence[Checker]) -> list[Finding]:
    findings: list[Finding] = []
    for checker in checkers:
        for finding in checker.check(context):
            if not context.is_suppressed(finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings)


def _finish_checkers(checkers: Sequence[Checker],
                     contexts: dict[str, ModuleContext]) -> list[Finding]:
    """Whole-run findings from checkers with a ``finish()`` hook.

    Cross-module rules (RPR012's acquisition graph) accumulate state in
    ``check`` and only know their findings once every file has been
    seen; ``finish()`` reports them.  Suppressions still apply, keyed on
    the file each finding is anchored in.
    """
    findings: list[Finding] = []
    for checker in checkers:
        finish = getattr(checker, "finish", None)
        if finish is None:
            continue
        for finding in finish():
            context = contexts.get(finding.path)
            if context is None or \
                    not context.is_suppressed(finding.line, finding.rule):
                findings.append(finding)
    return findings


def _parse_finding(path: str, error: SyntaxError) -> Finding:
    return Finding(
        path=path,
        line=error.lineno or 1,
        col=(error.offset or 1) - 1,
        rule=PARSE_RULE,
        message=f"file does not parse: {error.msg}",
    )
