"""The diagnostic record produced by every checker."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Orders by ``(path, line, col, rule)`` so reports are stable across
    runs and dict/set iteration orders.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """The one-line ``path:line:col: RULE message`` report form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (keys: rule, path, line, col, message)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
