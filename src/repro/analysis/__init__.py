"""Domain-aware static analysis for the :mod:`repro` codebase.

The library encodes invariants the paper's correctness depends on —
Dewey addresses are immutable tuples ordered lexicographically
(Section 3.1), distances are compared against :data:`repro.types.INFINITY`
sentinels during DRC tuning (Section 4.3), benchmark scenarios must be
deterministic — yet generic linters cannot see any of that.  This
package is an AST-based checker framework with a registry of
repro-specific rules and a ``repro lint`` CLI subcommand.

Public surface:

* :class:`~repro.analysis.findings.Finding` — one diagnostic;
* :func:`~repro.analysis.engine.lint_paths` — run the registered
  checkers over files or directories;
* :func:`~repro.analysis.registry.all_checkers` — the rule catalogue;
* :func:`~repro.analysis.cli.main` — the ``repro lint`` entry point.

Findings can be silenced line by line with a narrow suppression
comment::

    risky_line()  # repro: ignore[RPR005]

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue.
"""

from __future__ import annotations

from repro.analysis.cli import main
from repro.analysis.engine import lint_paths, lint_source
from repro.analysis.findings import Finding
from repro.analysis.registry import all_checkers, rule_ids

__all__ = [
    "Finding",
    "all_checkers",
    "lint_paths",
    "lint_source",
    "main",
    "rule_ids",
]
