"""The ``repro locks`` subcommand: render the lock-acquisition graph.

Builds the same static graph RPR012 checks (see
``repro.analysis.concurrency``) and renders it for humans (``text``) or
for CI artifacts and the runtime sanitizer diff (``--format json``).

Exit codes match ``repro lint``: ``0`` clean, ``1`` usage error, ``2``
when the graph contains an ordering cycle or self-edge (the same
conditions RPR012 reports as findings).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import TextIO

from repro.analysis.concurrency import AcquisitionGraph, build_graph

JSON_SCHEMA_VERSION = 1
"""Version of the ``--format json`` document layout."""

EXIT_CLEAN = 0
EXIT_USAGE = 1
EXIT_CYCLES = 2


def build_parser() -> argparse.ArgumentParser:
    """The ``repro locks`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro locks",
        description="Render the static lock-acquisition graph that "
                    "RPR012 checks (see docs/STATIC_ANALYSIS.md)",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to scan (default: src)")
    parser.add_argument("--format", dest="fmt",
                        choices=["text", "json"], default="text",
                        help="report format (default: text)")
    return parser


def render_json(graph: AcquisitionGraph) -> str:
    """The ``--format json`` document (stable schema, sorted content)."""
    document: dict[str, object] = {"version": JSON_SCHEMA_VERSION}
    document.update(graph.to_dict())
    return json.dumps(document, indent=2)


def render_text(graph: AcquisitionGraph, out: TextIO) -> None:
    """Human-readable graph rendering."""
    nodes = graph.nodes
    out.write(f"{len(nodes)} lock{'s' if len(nodes) != 1 else ''}, "
              f"{len(graph.edges)} nesting edge"
              f"{'s' if len(graph.edges) != 1 else ''}\n")
    for node in nodes:
        sites = graph.sites(node)
        out.write(f"  {node.qualified}  "
                  f"({len(sites)} acquisition site"
                  f"{'s' if len(sites) != 1 else ''})\n")
    if graph.edges:
        out.write("nesting edges (outer -> inner):\n")
        for (outer, inner), sites in sorted(
                graph.edges.items(), key=lambda item: item[0]):
            first = min(sites, key=lambda s: (s.path, s.line))
            out.write(f"  {outer.qualified} -> {inner.qualified}  "
                      f"[{first}]\n")
    for node, sites in sorted(graph.self_edges.items()):
        for site in sorted(sites, key=lambda s: (s.path, s.line)):
            out.write(f"SELF-EDGE: {node.qualified} re-acquired while "
                      f"held at {site}\n")
    cycles = graph.cycles()
    if cycles:
        for component in cycles:
            names = " <-> ".join(node.qualified for node in component)
            out.write(f"CYCLE: {names}\n")
            for outer, inner, site in graph.cycle_edges(component):
                out.write(f"  {outer.qualified} -> {inner.qualified} "
                          f"at {site}\n")
    elif not graph.self_edges:
        out.write("no ordering cycles\n")


def main(argv: Sequence[str] | None = None, *,
         stdout: TextIO | None = None,
         stderr: TextIO | None = None) -> int:
    """Entry point for ``repro locks``; returns a process exit code."""
    out = sys.stdout if stdout is None else stdout
    err = sys.stderr if stderr is None else stderr
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        graph = build_graph(args.paths)
    except (FileNotFoundError, OSError) as error:
        err.write(f"error: {error}\n")
        return EXIT_USAGE
    if args.fmt == "json":
        out.write(render_json(graph) + "\n")
    else:
        render_text(graph, out)
    if graph.cycles() or graph.self_edges:
        return EXIT_CYCLES
    return EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - module CLI entry
    raise SystemExit(main())
