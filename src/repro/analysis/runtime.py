"""Runtime companion to the concurrency lint rules: the lock sanitizer.

:class:`LockMonitor` is the dynamic half of the discipline that
RPR011/RPR012 prove statically.  In debug mode (the pytest fixture, or
any harness that opts in) it wraps a class's lock attributes in
recording proxies and then:

* maintains a per-thread stack of held locks and records every
  *dynamic* acquisition-order edge ``outer -> inner`` — including the
  call-through nestings the static graph cannot see (method A of one
  object calling method B of another under A's lock);
* reports an :class:`OrderViolation` the moment both ``a -> b`` and
  ``b -> a`` have been observed — the dynamic analogue of an RPR012
  cycle;
* optionally audits attribute writes on opted-in objects via a
  lightweight ``__setattr__`` patch, reporting an
  :class:`UnguardedWrite` when a guarded attribute is assigned without
  its lock held exclusively by the writing thread;
* publishes ``sanitizer.*`` counters through the existing metrics
  registry and diffs its dynamic edge set against the static
  acquisition graph built by ``repro.analysis.concurrency``.

The monitor's own bookkeeping mutex is only ever taken *after* a
wrapped lock has been acquired (never while blocking on one), so
enabling the sanitizer cannot introduce a deadlock that was not already
present.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterable, Mapping
from contextlib import contextmanager
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Iterator

from repro.exceptions import InvariantError

SHARED = "shared"
EXCLUSIVE = "exclusive"

_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()))


@dataclass(frozen=True)
class OrderViolation:
    """Both orders of one lock pair were observed at runtime."""

    first: str
    second: str

    def describe(self) -> str:
        """Human-readable one-line description."""
        return (f"locks acquired in both orders: '{self.first}' -> "
                f"'{self.second}' and '{self.second}' -> '{self.first}'")


@dataclass(frozen=True)
class UnguardedWrite:
    """A guarded attribute was assigned without its lock held."""

    cls: str
    attr: str
    lock: str

    def describe(self) -> str:
        """Human-readable one-line description."""
        return (f"{self.cls}.{self.attr} written without "
                f"'{self.lock}' held exclusively")


class _MonitoredLock:
    """Recording proxy around a ``threading.Lock``/``RLock``."""

    def __init__(self, monitor: "LockMonitor", label: str,
                 inner: Any) -> None:
        self._monitor = monitor
        self.label = label
        self.inner = inner

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = bool(self.inner.acquire(*args, **kwargs))
        if acquired:
            self._monitor._note_acquire(self.label, EXCLUSIVE)
        return acquired

    def release(self) -> None:
        self._monitor._note_release(self.label)
        self.inner.release()

    def locked(self) -> bool:
        return bool(self.inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        self.release()


class _MonitoredCondition(_MonitoredLock):
    """Recording proxy around ``threading.Condition``.

    ``wait``/``wait_for`` release and reacquire the underlying lock
    internally, but the waiting thread is blocked for the whole window
    and cannot acquire anything else, so the held-stack entry is left
    in place — no false edges can be recorded through a wait.
    """

    def wait(self, timeout: float | None = None) -> bool:
        return bool(self.inner.wait(timeout))

    def wait_for(self, predicate: Callable[[], bool],
                 timeout: float | None = None) -> bool:
        return bool(self.inner.wait_for(predicate, timeout))

    def notify(self, n: int = 1) -> None:
        self.inner.notify(n)

    def notify_all(self) -> None:
        self.inner.notify_all()


class _MonitoredRWLock:
    """Recording proxy around a reader-writer lock exposing
    ``read()``/``write()`` context managers (``_ReadWriteLock``)."""

    def __init__(self, monitor: "LockMonitor", label: str,
                 inner: Any) -> None:
        self._monitor = monitor
        self.label = label
        self.inner = inner

    @contextmanager
    def read(self) -> Iterator[None]:
        with self.inner.read():
            self._monitor._note_acquire(self.label, SHARED)
            try:
                yield
            finally:
                self._monitor._note_release(self.label)

    @contextmanager
    def write(self) -> Iterator[None]:
        with self.inner.write():
            self._monitor._note_acquire(self.label, EXCLUSIVE)
            try:
                yield
            finally:
                self._monitor._note_release(self.label)


_MONITORED_TYPES = (_MonitoredLock, _MonitoredRWLock)


def _is_rw_lock(value: Any) -> bool:
    return (not isinstance(value, _MONITORED_TYPES)
            and callable(getattr(value, "read", None))
            and callable(getattr(value, "write", None))
            and hasattr(value, "_condition"))


class LockMonitor:
    """Dynamic lock-discipline sanitizer (see module docstring).

    Typical use (the pytest fixture does exactly this)::

        monitor = LockMonitor()
        monitor.attach(cache)                 # wrap lock attributes
        monitor.audit(cache, {"_entries": "_lock"})  # write audit
        ...exercise the object from many threads...
        monitor.assert_clean()                # raises on violations
        monitor.close()                       # restore everything
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._tls = threading.local()
        # All of the following are guarded by _mutex; the monitor is
        # itself exempt from the static rules (analysis package is out
        # of RPR013 scope and uses no annotations).
        self._edges: dict[tuple[str, str], int] = {}
        self._violations: list[OrderViolation] = []
        self._violation_keys: set[frozenset[str]] = set()
        self._writes: list[UnguardedWrite] = []
        self._acquisitions = 0
        self._attached: list[tuple[Any, str, Any]] = []
        self._audited: dict[int, tuple[Any, dict[str, str]]] = {}
        self._patched_setattr: dict[type, Any] = {}
        self._counters: dict[str, Any] = {}
        self._closed = False

    # -- held-stack bookkeeping (called by the proxies) ------------------
    def _stack(self) -> list[tuple[str, str]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def _note_acquire(self, label: str, mode: str) -> None:
        stack = self._stack()
        new_edges: list[tuple[str, str]] = []
        held_labels = []
        for held, _mode in stack:
            if held != label and held not in held_labels:
                held_labels.append(held)
        with self._mutex:
            self._acquisitions += 1
            self._bump("sanitizer.acquisitions")
            for held in held_labels:
                edge = (held, label)
                if edge not in self._edges:
                    self._edges[edge] = 0
                    new_edges.append(edge)
                    self._bump("sanitizer.order_edges")
                self._edges[edge] += 1
                reverse = (label, held)
                key = frozenset((held, label))
                if reverse in self._edges \
                        and key not in self._violation_keys:
                    self._violation_keys.add(key)
                    self._violations.append(
                        OrderViolation(first=held, second=label))
                    self._bump("sanitizer.order_violations")
        stack.append((label, mode))

    def _note_release(self, label: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == label:
                del stack[index]
                return

    def _holds_exclusive(self, label: str) -> bool:
        return any(held == label and mode == EXCLUSIVE
                   for held, mode in self._stack())

    def _bump(self, name: str) -> None:
        counter = self._counters.get(name)
        if counter is not None:
            counter.inc()

    # -- wiring ----------------------------------------------------------
    def attach(self, obj: Any, attrs: Iterable[str] | None = None) -> Any:
        """Replace ``obj``'s lock attributes with recording proxies.

        Locks, RLocks, Conditions, and reader-writer locks are
        recognised; everything else is left alone.  ``attrs`` restricts
        the scan.  Returns ``obj`` for chaining.
        """
        names = list(attrs) if attrs is not None else \
            sorted(self._attribute_names(obj))
        for attr in names:
            value = getattr(obj, attr, None)
            if isinstance(value, _MONITORED_TYPES):
                continue
            label = f"{type(obj).__name__}.{attr}"
            wrapper: Any
            if isinstance(value, threading.Condition):
                wrapper = _MonitoredCondition(self, label, value)
            elif isinstance(value, _LOCK_TYPES):
                wrapper = _MonitoredLock(self, label, value)
            elif _is_rw_lock(value):
                wrapper = _MonitoredRWLock(self, label, value)
            else:
                continue
            object.__setattr__(obj, attr, wrapper)
            self._attached.append((obj, attr, value))
        return obj

    @staticmethod
    def _attribute_names(obj: Any) -> set[str]:
        names: set[str] = set(getattr(obj, "__dict__", {}))
        for klass in type(obj).__mro__:
            names.update(getattr(klass, "__slots__", ()))
        return names

    def audit(self, obj: Any, guards: Mapping[str, str]) -> Any:
        """Record unguarded writes to ``obj``'s guarded attributes.

        ``guards`` maps attribute name -> lock attribute name (the
        static ``# guarded by:`` declarations).  The class's
        ``__setattr__`` is patched once; only opted-in instances pay
        the audit cost.  Returns ``obj``.
        """
        cls = type(obj)
        self._audited[id(obj)] = (obj, dict(guards))
        if cls in self._patched_setattr:
            return obj
        original = cls.__setattr__
        monitor = self

        def audited_setattr(instance: Any, name: str, value: Any) -> None:
            entry = monitor._audited.get(id(instance))
            if entry is not None and entry[0] is instance:
                lock_attr = entry[1].get(name)
                if lock_attr is not None:
                    wrapper = getattr(instance, lock_attr, None)
                    label = getattr(wrapper, "label",
                                    f"{type(instance).__name__}.{lock_attr}")
                    if not monitor._holds_exclusive(label):
                        with monitor._mutex:
                            monitor._writes.append(UnguardedWrite(
                                cls=type(instance).__name__, attr=name,
                                lock=lock_attr))
                            monitor._bump("sanitizer.unguarded_writes")
            original(instance, name, value)

        cls.__setattr__ = audited_setattr  # type: ignore[method-assign]
        self._patched_setattr[cls] = original
        return obj

    def bind(self, registry: Any) -> None:
        """Publish ``sanitizer.*`` counters through a metrics registry."""
        for name in ("sanitizer.acquisitions", "sanitizer.order_edges",
                     "sanitizer.order_violations",
                     "sanitizer.unguarded_writes"):
            self._counters[name] = registry.counter(name)

    # -- results ---------------------------------------------------------
    @property
    def acquisitions(self) -> int:
        with self._mutex:
            return self._acquisitions

    def edges(self) -> dict[tuple[str, str], int]:
        """Dynamic acquisition-order edges -> observation counts."""
        with self._mutex:
            return dict(self._edges)

    @property
    def order_violations(self) -> tuple[OrderViolation, ...]:
        with self._mutex:
            return tuple(self._violations)

    @property
    def unguarded_writes(self) -> tuple[UnguardedWrite, ...]:
        with self._mutex:
            return tuple(self._writes)

    def diff_static(self, static_edges: Iterable[tuple[str, str]]) \
            -> list[tuple[str, str]]:
        """Dynamic edges the static RPR012 graph does not know about.

        The static graph only sees *syntactic* nesting, so call-through
        acquisitions show up here; the result is informational (it is
        the ordering *violations* that fail a run), sorted for stable
        reporting.
        """
        known = set(static_edges)
        with self._mutex:
            return sorted(edge for edge in self._edges
                          if edge not in known)

    def assert_clean(self) -> None:
        """Raise :class:`InvariantError` when any ordering violation or
        unguarded write was observed."""
        with self._mutex:
            problems = [v.describe() for v in self._violations]
            problems += [w.describe() for w in self._writes]
        if problems:
            raise InvariantError(
                "lock sanitizer observed violations: "
                + "; ".join(problems))

    def close(self) -> None:
        """Restore every wrapped lock attribute and patched
        ``__setattr__``; recorded results stay readable."""
        if self._closed:
            return
        self._closed = True
        for cls, original in self._patched_setattr.items():
            cls.__setattr__ = original  # type: ignore[method-assign]
        self._patched_setattr.clear()
        self._audited.clear()
        for obj, attr, value in reversed(self._attached):
            object.__setattr__(obj, attr, value)
        self._attached.clear()


__all__ = [
    "EXCLUSIVE",
    "LockMonitor",
    "OrderViolation",
    "SHARED",
    "UnguardedWrite",
]
