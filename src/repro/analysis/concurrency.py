"""Static model of the lock discipline declared in source annotations.

The concurrency rules (RPR011/RPR012/RPR013, see
``repro.analysis.checkers.concurrency``) and the ``repro locks`` CLI
share this module: it parses the annotation grammar, extracts per-class
guard declarations, recognises lock acquisitions in ``with`` statements,
classifies attribute accesses as reads or writes, and accumulates the
cross-module lock-acquisition graph.

Annotation grammar
------------------

``# guarded by: <lock>`` — trailing comment on an attribute assignment
in ``__init__`` (or a class-body annotation).  Declares that the
attribute is protected by ``self.<lock>``: writes require the lock held
*exclusively*, reads require it held in any mode.

``# guarded by: <lock> (writes)`` — writes-only discipline: mutations
require the exclusive lock, but lock-free reads are sanctioned.  This is
the honest annotation for append-only buffers and atomically-read epoch
counters, where readers tolerate a stale-but-consistent snapshot.

``# holds: <lock>[, <lock>...]`` — trailing comment on a ``def`` line
(or on a statement in the decorator/signature region).  A method-level
contract: callers must already hold the listed locks.  The method body
is checked with those locks assumed held, and every intra-class call to
the method is checked for the locks actually being held at the call
site (the one-level call-graph follow for ``_locked_get``-style
helpers).

Reader–writer locks
-------------------

``with self.<lock>:`` acquires exclusively; ``with self.<lock>.read():``
acquires the shared side; ``with self.<lock>.write():`` the exclusive
side.  This models :class:`repro.index.sqlite._ReadWriteLock` without
special-casing it: shared reads of a guarded attribute pass, writes
under only the shared side are findings.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.analysis.context import ModuleContext

GUARD_RE = re.compile(
    r"#\s*guarded\s+by:\s*(?P<lock>[A-Za-z_]\w*)"
    r"(?:\s*\(\s*(?P<mode>writes)\s*\))?"
)

HOLDS_RE = re.compile(
    r"#\s*holds:\s*(?P<locks>[A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)"
)

#: Attribute names that look like synchronisation primitives; used to
#: decide whether a bare ``with self.x:`` enters the acquisition graph
#: (``with self._lock:`` does, ``with self._span:`` does not).
_LOCKISH_RE = re.compile(r"lock|mutex|cond|sem", re.IGNORECASE)

#: Method calls on a guarded container that mutate it in place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "add", "clear", "discard", "extend",
    "extendleft", "insert", "move_to_end", "pop", "popitem", "popleft",
    "remove", "reverse", "rotate", "setdefault", "sort", "update",
})

#: Acquisition modes, ordered weak-to-strong.
SHARED = "shared"
EXCLUSIVE = "exclusive"


def lockish(name: str) -> bool:
    """True when an attribute name plausibly denotes a lock."""
    return _LOCKISH_RE.search(name) is not None


@dataclass(frozen=True)
class GuardSpec:
    """One declared guard: which lock, and whether reads are exempt."""

    lock: str
    writes_only: bool = False


@dataclass
class ClassModel:
    """Guard and contract declarations extracted from one class body."""

    name: str
    guards: dict[str, GuardSpec] = field(default_factory=dict)
    holds: dict[str, frozenset[str]] = field(default_factory=dict)

    @property
    def checkable(self) -> bool:
        return bool(self.guards or self.holds)


@dataclass(frozen=True, order=True)
class LockNode:
    """A lock identity in the acquisition graph."""

    module: str
    cls: str
    attr: str

    @property
    def label(self) -> str:
        """Class-qualified attribute (``PackedDeweyArena._intern_lock``)
        — the key the runtime sanitizer diffs against."""
        return f"{self.cls}.{self.attr}" if self.cls else self.attr

    @property
    def qualified(self) -> str:
        """Fully qualified rendering for reports."""
        return f"{self.module}:{self.label}"


@dataclass(frozen=True)
class Site:
    """A source location witnessing an acquisition or edge."""

    path: str
    line: int

    def __str__(self) -> str:
        return f"{self.path}:{self.line}"


class AcquisitionGraph:
    """Cross-module graph of syntactically nested lock acquisitions.

    Nodes are :class:`LockNode` keys; a directed edge ``a -> b`` records
    that somewhere, ``b`` was acquired while ``a`` was already held in
    the same ``with`` nesting.  Cycles (including self-edges) are the
    RPR012 findings: two code paths acquiring the same locks in opposite
    orders can deadlock.
    """

    def __init__(self) -> None:
        self._sites: dict[LockNode, list[tuple[Site, str]]] = {}
        self._edges: dict[tuple[LockNode, LockNode], list[Site]] = {}
        self._self_edges: dict[LockNode, list[Site]] = {}

    # -- construction ----------------------------------------------------
    def add_acquisition(self, node: LockNode, site: Site,
                        mode: str = EXCLUSIVE) -> None:
        """Record one acquisition site of ``node``."""
        self._sites.setdefault(node, []).append((site, mode))

    def add_edge(self, outer: LockNode, inner: LockNode, site: Site) -> None:
        """Record that ``inner`` was acquired while ``outer`` was held."""
        if outer == inner:
            self._self_edges.setdefault(outer, []).append(site)
            return
        self._edges.setdefault((outer, inner), []).append(site)

    # -- queries ---------------------------------------------------------
    @property
    def nodes(self) -> list[LockNode]:
        seen = set(self._sites)
        for outer, inner in self._edges:
            seen.add(outer)
            seen.add(inner)
        seen.update(self._self_edges)
        return sorted(seen)

    @property
    def edges(self) -> dict[tuple[LockNode, LockNode], list[Site]]:
        return dict(self._edges)

    @property
    def self_edges(self) -> dict[LockNode, list[Site]]:
        return dict(self._self_edges)

    def sites(self, node: LockNode) -> list[tuple[Site, str]]:
        """Acquisition sites of ``node`` as ``(site, mode)`` pairs."""
        return list(self._sites.get(node, []))

    def edge_labels(self) -> set[tuple[str, str]]:
        """Edges as ``(outer_label, inner_label)`` pairs — the shape the
        runtime sanitizer's dynamic graph is diffed against."""
        return {(outer.label, inner.label) for outer, inner in self._edges}

    def cycles(self) -> list[list[LockNode]]:
        """Strongly connected components of size > 1, each a potential
        deadlock; deterministic ordering."""
        adjacency: dict[LockNode, set[LockNode]] = {}
        for outer, inner in self._edges:
            adjacency.setdefault(outer, set()).add(inner)
            adjacency.setdefault(inner, set())
        components = _tarjan(adjacency)
        return sorted(
            [sorted(component) for component in components
             if len(component) > 1])

    def cycle_edges(self, component: Sequence[LockNode]) \
            -> list[tuple[LockNode, LockNode, Site]]:
        """The witnessing edges internal to one cycle, sorted."""
        members = set(component)
        witnesses = []
        for (outer, inner), sites in self._edges.items():
            if outer in members and inner in members:
                witnesses.append((outer, inner, min(sites,
                                                    key=lambda s: (s.path,
                                                                   s.line))))
        return sorted(witnesses, key=lambda item: (item[0], item[1]))

    def to_dict(self) -> dict[str, object]:
        """JSON-ready rendering (stable ordering) for ``repro locks``."""
        return {
            "nodes": [
                {
                    "id": node.qualified,
                    "module": node.module,
                    "class": node.cls,
                    "attr": node.attr,
                    "acquisitions": [
                        {"site": str(site), "mode": mode}
                        for site, mode in sorted(
                            self._sites.get(node, []),
                            key=lambda pair: (pair[0].path, pair[0].line))
                    ],
                }
                for node in self.nodes
            ],
            "edges": [
                {
                    "from": outer.qualified,
                    "to": inner.qualified,
                    "sites": [str(site) for site in
                              sorted(sites, key=lambda s: (s.path, s.line))],
                }
                for (outer, inner), sites in sorted(
                    self._edges.items(),
                    key=lambda item: (item[0][0], item[0][1]))
            ],
            "self_edges": [
                {
                    "node": node.qualified,
                    "sites": [str(site) for site in
                              sorted(sites, key=lambda s: (s.path, s.line))],
                }
                for node, sites in sorted(self._self_edges.items())
            ],
            "cycles": [
                [node.qualified for node in component]
                for component in self.cycles()
            ],
        }


def _tarjan(adjacency: dict[LockNode, set[LockNode]]) \
        -> list[list[LockNode]]:
    """Iterative Tarjan SCC (recursion-free: the graph is tiny but the
    linter must never hit the interpreter recursion limit on
    adversarial input)."""
    index: dict[LockNode, int] = {}
    lowlink: dict[LockNode, int] = {}
    on_stack: set[LockNode] = set()
    stack: list[LockNode] = []
    components: list[list[LockNode]] = []
    counter = 0

    for root in sorted(adjacency):
        if root in index:
            continue
        work: list[tuple[LockNode, Iterator[LockNode]]] = []
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, iter(sorted(adjacency.get(root, ())))))
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append(
                        (successor,
                         iter(sorted(adjacency.get(successor, ())))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


# ---------------------------------------------------------------------------
# Annotation extraction


def module_name(context: ModuleContext) -> str:
    """Dotted module path inside ``repro``, or the file stem for
    out-of-package fixtures."""
    if not context.scope:
        return PurePosixPath(context.path.replace("\\", "/")).stem
    parts = list(context.scope)
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(parts)


def guard_on_lines(lines: Sequence[str], start: int,
                    end: int) -> GuardSpec | None:
    """The first ``# guarded by:`` annotation on source lines
    ``start..end`` (1-based, inclusive)."""
    for lineno in range(start, min(end, len(lines)) + 1):
        match = GUARD_RE.search(lines[lineno - 1])
        if match:
            return GuardSpec(lock=match.group("lock"),
                             writes_only=match.group("mode") == "writes")
    return None


def holds_on_lines(lines: Sequence[str], start: int,
                    end: int) -> frozenset[str] | None:
    """The first ``# holds:`` contract on source lines ``start..end``
    (1-based, inclusive)."""
    for lineno in range(start, min(end, len(lines)) + 1):
        match = HOLDS_RE.search(lines[lineno - 1])
        if match:
            return frozenset(
                part.strip() for part in match.group("locks").split(","))
    return None


def _self_attr_target(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def extract_class_models(context: ModuleContext) -> dict[str, ClassModel]:
    """Guard/contract declarations for every class in the module.

    Guards come from ``# guarded by:`` trailing comments on ``self.x``
    assignments inside ``__init__`` and on class-body annotations;
    ``# holds:`` contracts come from trailing comments in the region
    between a ``def`` line and its first body statement.
    """
    lines = context.source.splitlines()
    models: dict[str, ClassModel] = {}
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = ClassModel(name=node.name)
        for stmt in node.body:
            # Class-body annotations: ``_entries: OrderedDict  # guarded..``
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                spec = guard_on_lines(lines, stmt.lineno,
                                       stmt.end_lineno or stmt.lineno)
                if spec:
                    model.guards[stmt.target.id] = spec
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            first_body_line = stmt.body[0].lineno if stmt.body else stmt.lineno
            holds = holds_on_lines(lines, stmt.lineno,
                                    max(stmt.lineno, first_body_line - 1))
            if holds:
                model.holds[stmt.name] = holds
            if stmt.name != "__init__":
                continue
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign):
                    targets: list[ast.expr] = list(sub.targets)
                elif isinstance(sub, ast.AnnAssign):
                    targets = [sub.target]
                else:
                    continue
                attrs = [attr for target in targets
                         if (attr := _self_attr_target(target)) is not None]
                if not attrs:
                    continue
                spec = guard_on_lines(lines, sub.lineno,
                                       sub.end_lineno or sub.lineno)
                if spec:
                    for attr in attrs:
                        model.guards.setdefault(attr, spec)
        models[node.name] = model
    return models


# ---------------------------------------------------------------------------
# Acquisition recognition and access classification


def acquisition_of(expr: ast.expr) -> tuple[str, str, bool] | None:
    """Recognise a lock acquisition in a ``with`` item.

    Returns ``(attr_name, mode, is_self)`` where mode is
    :data:`SHARED` or :data:`EXCLUSIVE`, or ``None`` when the context
    manager is not a recognisable lock (``with tracer.span(...)``,
    ``with open(...)``).
    """
    attr = _self_attr_target(expr)
    if attr is not None:
        return attr, EXCLUSIVE, True
    if isinstance(expr, ast.Name):
        return expr.id, EXCLUSIVE, False
    if isinstance(expr, ast.Call) and not expr.args and not expr.keywords \
            and isinstance(expr.func, ast.Attribute) \
            and expr.func.attr in ("read", "write"):
        base = _self_attr_target(expr.func.value)
        mode = SHARED if expr.func.attr == "read" else EXCLUSIVE
        if base is not None:
            return base, mode, True
        if isinstance(expr.func.value, ast.Name):
            return expr.func.value.id, mode, False
    return None


def build_parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child -> parent for every node under ``root``."""
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def is_write_access(node: ast.expr,
                    parents: dict[ast.AST, ast.AST]) -> bool:
    """Whether an attribute access mutates the guarded object.

    Stores/deletes of the attribute itself, subscript stores into it,
    stores through a sub-attribute, and in-place mutator method calls
    (``.append``/``.update``/...) all count as writes; everything else
    is a read.
    """
    current: ast.expr = node
    while True:
        ctx = getattr(current, "ctx", None)
        if isinstance(ctx, (ast.Store, ast.Del)):
            return True
        parent = parents.get(current)
        if isinstance(parent, ast.Subscript) and parent.value is current:
            if isinstance(parent.ctx, (ast.Store, ast.Del)):
                return True
            current = parent
            continue
        if isinstance(parent, ast.Attribute) and parent.value is current:
            if isinstance(parent.ctx, (ast.Store, ast.Del)):
                return True
            grandparent = parents.get(parent)
            if parent.attr in MUTATOR_METHODS \
                    and isinstance(grandparent, ast.Call) \
                    and grandparent.func is parent:
                return True
            return False
        return False


# ---------------------------------------------------------------------------
# Graph collection


def collect_acquisitions(context: ModuleContext,
                         graph: AcquisitionGraph) -> None:
    """Add every syntactically nested acquisition pair in ``context`` to
    ``graph``.

    Nesting is tracked per execution context: a nested ``def`` runs
    later on an unknown stack, so it restarts with an empty held set
    rather than inheriting its enclosing ``with`` frames.
    """
    module = module_name(context)
    models = extract_class_models(context)

    def declared(cls: str) -> set[str]:
        model = models.get(cls)
        if model is None:
            return set()
        names = {spec.lock for spec in model.guards.values()}
        for locks in model.holds.values():
            names.update(locks)
        return names

    def scan(node: ast.AST, cls: str, held: list[LockNode]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            for child in ast.iter_child_nodes(node):
                scan(child, cls, [])
            return
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                scan(child, node.name, [])
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            current = list(held)
            for item in node.items:
                parsed = acquisition_of(item.context_expr)
                if parsed is None:
                    continue
                attr, mode, is_self = parsed
                if not (lockish(attr) or attr in declared(cls)):
                    continue
                lock = LockNode(module=module, cls=cls if is_self else "",
                                attr=attr)
                site = Site(path=context.path,
                            line=item.context_expr.lineno)
                graph.add_acquisition(lock, site, mode)
                for outer in dict.fromkeys(current):
                    graph.add_edge(outer, lock, site)
                current.append(lock)
            for stmt in node.body:
                scan(stmt, cls, current)
            return
        for child in ast.iter_child_nodes(node):
            scan(child, cls, held)

    scan(context.tree, "", [])


def build_graph(paths: Sequence[str | Path]) -> AcquisitionGraph:
    """The acquisition graph of every parseable module under ``paths``
    (the ``repro locks`` / sanitizer-diff entry point)."""
    from repro.analysis.engine import collect_files

    graph = AcquisitionGraph()
    for file_path in collect_files(paths):
        text = file_path.read_text(encoding="utf-8")
        try:
            context = ModuleContext.from_source(text, str(file_path))
        except SyntaxError:
            continue  # RPR000 owns unparseable files
        collect_acquisitions(context, graph)
    return graph


def build_graph_from_source(source: str,
                            path: str = "<string>") -> AcquisitionGraph:
    """Single-module graph (unit-test convenience)."""
    graph = AcquisitionGraph()
    collect_acquisitions(ModuleContext.from_source(source, path), graph)
    return graph


def merge_mode(current: str | None, acquired: str) -> str:
    """Strongest of two hold modes (re-acquiring a held lock's shared
    side never weakens an exclusive hold)."""
    if current == EXCLUSIVE or acquired == EXCLUSIVE:
        return EXCLUSIVE
    return SHARED


__all__ = [
    "AcquisitionGraph",
    "ClassModel",
    "EXCLUSIVE",
    "GUARD_RE",
    "GuardSpec",
    "HOLDS_RE",
    "LockNode",
    "MUTATOR_METHODS",
    "SHARED",
    "Site",
    "acquisition_of",
    "build_graph",
    "build_graph_from_source",
    "build_parent_map",
    "collect_acquisitions",
    "extract_class_models",
    "guard_on_lines",
    "is_write_access",
    "lockish",
    "merge_mode",
    "module_name",
]
