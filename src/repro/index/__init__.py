"""Index substrate: inverted and forward document indexes.

The paper assumes three indexes (Section 5.3): an ontology index for graph
traversal (that is :class:`repro.ontology.graph.Ontology` itself), an
inverted index mapping concepts to the documents containing them, and a
forward index mapping documents back to their concepts.  Both corpus
indexes are available in-memory and SQLite-backed (the paper used MySQL);
all backends implement the same small interfaces from
:mod:`repro.index.base` so the search algorithms are storage-agnostic and
the benchmark harness can measure the I/O split.
"""

from repro.index.base import ForwardIndexBase, InvertedIndexBase
from repro.index.memory import MemoryForwardIndex, MemoryInvertedIndex
from repro.index.sqlite import SQLiteIndexStore

__all__ = [
    "InvertedIndexBase",
    "ForwardIndexBase",
    "MemoryInvertedIndex",
    "MemoryForwardIndex",
    "SQLiteIndexStore",
]
