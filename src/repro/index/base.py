"""Abstract interfaces for the corpus indexes.

Kept intentionally tiny: kNDS only ever asks "which documents contain this
concept?" (inverted) and "which concepts does this document contain, and
how many?" (forward).  Anything else — sorting, caching, storage layout —
is a backend concern.

Both interfaces carry one shared observability hook: :meth:`instrument`
attaches a :class:`repro.obs.Observability` bundle, after which lookups
report I/O timing, row counts and leaf spans.  The default (detached)
state costs a single ``None`` check per lookup.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro.types import ConceptId, DocId

if TYPE_CHECKING:
    from repro.obs import Observability


class _Instrumented:
    """Mixin: the detachable observability hook shared by all backends."""

    _obs: "Observability | None" = None

    def instrument(self, obs: "Observability | None") -> None:
        """Attach an :class:`repro.obs.Observability` bundle (or ``None``).

        While attached, every lookup records into the bundle's
        ``index.io_seconds`` / ``index.rows_read`` counters and emits a
        leaf span per access.
        """
        self._obs = obs


class InvertedIndexBase(_Instrumented, ABC):
    """Concept -> documents mapping."""

    @abstractmethod
    def postings(self, concept_id: ConceptId) -> Sequence[DocId]:
        """Documents containing ``concept_id`` (empty if none)."""

    @abstractmethod
    def indexed_concepts(self) -> Iterator[ConceptId]:
        """All concepts with a non-empty postings list."""

    @abstractmethod
    def document_frequency(self, concept_id: ConceptId) -> int:
        """Number of documents containing ``concept_id``."""


class ForwardIndexBase(_Instrumented, ABC):
    """Document -> concepts mapping."""

    @abstractmethod
    def concepts(self, doc_id: DocId) -> Sequence[ConceptId]:
        """Concepts of the document (raises ``KeyError`` family if absent)."""

    @abstractmethod
    def concept_count(self, doc_id: DocId) -> int:
        """``|Cd|``, the size of the document's concept set (Eq. 3)."""

    @abstractmethod
    def doc_ids(self) -> Iterator[DocId]:
        """All indexed documents."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of indexed documents."""
