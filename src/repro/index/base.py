"""Abstract interfaces for the corpus indexes.

Kept intentionally tiny: kNDS only ever asks "which documents contain this
concept?" (inverted) and "which concepts does this document contain, and
how many?" (forward).  Anything else — sorting, caching, storage layout —
is a backend concern.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterator, Sequence

from repro.types import ConceptId, DocId


class InvertedIndexBase(ABC):
    """Concept -> documents mapping."""

    @abstractmethod
    def postings(self, concept_id: ConceptId) -> Sequence[DocId]:
        """Documents containing ``concept_id`` (empty if none)."""

    @abstractmethod
    def indexed_concepts(self) -> Iterator[ConceptId]:
        """All concepts with a non-empty postings list."""

    @abstractmethod
    def document_frequency(self, concept_id: ConceptId) -> int:
        """Number of documents containing ``concept_id``."""


class ForwardIndexBase(ABC):
    """Document -> concepts mapping."""

    @abstractmethod
    def concepts(self, doc_id: DocId) -> Sequence[ConceptId]:
        """Concepts of the document (raises ``KeyError`` family if absent)."""

    @abstractmethod
    def concept_count(self, doc_id: DocId) -> int:
        """``|Cd|``, the size of the document's concept set (Eq. 3)."""

    @abstractmethod
    def doc_ids(self) -> Iterator[DocId]:
        """All indexed documents."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of indexed documents."""
