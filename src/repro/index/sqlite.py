"""SQLite-backed corpus indexes (the paper's MySQL deployment, scaled down).

The paper loaded its inverted and forward indexes into MySQL and reported
database access times as a separate component of query cost.  This module
provides the same deployment shape on SQLite: one store owning the
connection and schema, exposing inverted and forward index views that
satisfy the interfaces in :mod:`repro.index.base`.

Schema::

    postings(concept TEXT, doc TEXT)        -- inverted index
    forward(doc TEXT, concept TEXT)         -- forward index
    doc_size(doc TEXT PRIMARY KEY, n INT)   -- |Cd| lookups for Eq. 3

Covering B-tree indexes on ``postings(concept, doc)`` and
``forward(doc, concept)`` are created after bulk load, which is the usual
fast path for write-once read-many index builds.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import UnknownDocumentError
from repro.index.base import ForwardIndexBase, InvertedIndexBase
from repro.types import ConceptId, DocId

if TYPE_CHECKING:
    from repro.obs import Observability


class _ReadWriteLock:
    """Reader-shared, writer-exclusive lock with writer preference.

    Any number of readers may hold the lock together; a writer waits for
    them to leave and then holds it alone.  Arriving readers queue
    behind a waiting writer (otherwise a steady read stream would
    starve mutations forever).  This is what makes the store's
    "before-or-after" read guarantee real: a multi-statement mutation
    can never interleave with a read on the shared connection.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0  # guarded by: _condition
        self._writing = False  # guarded by: _condition
        self._writers_waiting = 0  # guarded by: _condition

    @contextmanager
    def read(self) -> Iterator[None]:
        """Hold the lock in shared mode for the ``with`` body."""
        with self._condition:
            self._condition.wait_for(
                lambda: not self._writing and not self._writers_waiting)
            self._readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._readers -= 1
                if self._readers == 0:
                    self._condition.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """Hold the lock exclusively for the ``with`` body."""
        with self._condition:
            self._writers_waiting += 1
            try:
                self._condition.wait_for(
                    lambda: not self._writing and self._readers == 0)
            finally:
                self._writers_waiting -= 1
            self._writing = True
        try:
            yield
        finally:
            with self._condition:
                self._writing = False
                self._condition.notify_all()


class SQLiteIndexStore:
    """Owns the SQLite connection and both index views.

    Parameters
    ----------
    path:
        Database location; the default ``":memory:"`` keeps everything in
        RAM while still exercising the full SQL access path.

    Concurrency model
    -----------------
    One connection is shared by both views and opened with
    ``check_same_thread=False`` so the multi-threaded serving layer
    (:mod:`repro.serve`) can read from worker threads.  CPython's
    :mod:`sqlite3` module is compiled in serialized mode
    (``sqlite3.threadsafety == 3``), so statements on the shared
    connection never corrupt each other — but same-connection readers
    *would* observe the uncommitted middle of a multi-statement
    mutation, statement by statement.  A store-level reader-writer lock
    closes that window: reads run concurrently with each other in
    shared mode, while writes (:meth:`add_document` /
    :meth:`remove_document` and the schema/bulk-load path) hold the
    lock exclusively.  Readers therefore see the corpus before or after
    a whole mutation, never a half-applied one, and pay only one
    uncontended lock operation per lookup on the read path.

    Example
    -------
    >>> store = SQLiteIndexStore.build(collection)        # doctest: +SKIP
    >>> store.inverted.postings("C0000042")               # doctest: +SKIP
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._connection = sqlite3.connect(
            str(path), check_same_thread=False)  # guarded by: _lock
        self._connection.execute("PRAGMA journal_mode = MEMORY")
        self._connection.execute("PRAGMA synchronous = OFF")
        self._lock = _ReadWriteLock()
        self.inverted = SQLiteInvertedIndex(self._connection, self._lock)
        self.forward = SQLiteForwardIndex(self._connection, self._lock)

    @classmethod
    def build(cls, collection: DocumentCollection,
              path: str | Path = ":memory:") -> "SQLiteIndexStore":
        """Create the schema and bulk-load a collection."""
        store = cls(path)
        store._create_schema()
        store._load(collection)
        return store

    @classmethod
    def open(cls, path: str | Path) -> "SQLiteIndexStore":
        """Open an existing on-disk store built earlier with :meth:`build`."""
        return cls(path)

    def _create_schema(self) -> None:
        with self._lock.write():
            cursor = self._connection.cursor()
            cursor.executescript(
                """
                DROP TABLE IF EXISTS postings;
                DROP TABLE IF EXISTS forward;
                DROP TABLE IF EXISTS doc_size;
                CREATE TABLE postings
                    (concept TEXT NOT NULL, doc TEXT NOT NULL);
                CREATE TABLE forward
                    (doc TEXT NOT NULL, concept TEXT NOT NULL);
                CREATE TABLE doc_size
                    (doc TEXT PRIMARY KEY, n INTEGER NOT NULL);
                """
            )
            self._connection.commit()

    def _load(self, collection: DocumentCollection) -> None:
        pairs = [
            (concept_id, document.doc_id)
            for document in collection
            for concept_id in document.concepts
        ]
        with self._lock.write():
            cursor = self._connection.cursor()
            cursor.executemany("INSERT INTO postings VALUES (?, ?)", pairs)
            cursor.executemany(
                "INSERT INTO forward VALUES (?, ?)",
                ((doc, concept) for concept, doc in pairs),
            )
            cursor.executemany(
                "INSERT INTO doc_size VALUES (?, ?)",
                ((document.doc_id, len(document))
                 for document in collection),
            )
            cursor.executescript(
                """
                CREATE INDEX idx_postings ON postings (concept, doc);
                CREATE INDEX idx_forward ON forward (doc, concept);
                """
            )
            self._connection.commit()

    # ------------------------------------------------------------------
    # Incremental maintenance (the paper's on-the-fly insertion story)
    # ------------------------------------------------------------------
    def add_document(self, document: "Document") -> None:
        """Index one new document: a handful of inserted rows."""
        with self._lock.write():
            cursor = self._connection.cursor()
            cursor.executemany(
                "INSERT INTO postings VALUES (?, ?)",
                ((concept, document.doc_id)
                 for concept in document.concepts),
            )
            cursor.executemany(
                "INSERT INTO forward VALUES (?, ?)",
                ((document.doc_id, concept)
                 for concept in document.concepts),
            )
            cursor.execute("INSERT INTO doc_size VALUES (?, ?)",
                           (document.doc_id, len(document)))
            self._connection.commit()

    def remove_document(self, doc_id: DocId) -> None:
        """Drop one document's rows from all three tables."""
        with self._lock.write():
            cursor = self._connection.cursor()
            cursor.execute("DELETE FROM postings WHERE doc = ?", (doc_id,))
            cursor.execute("DELETE FROM forward WHERE doc = ?", (doc_id,))
            cursor.execute("DELETE FROM doc_size WHERE doc = ?", (doc_id,))
            self._connection.commit()

    def instrument(self, obs: "Observability | None") -> None:
        """Attach an :class:`repro.obs.Observability` bundle to both views.

        Every SQL lookup then reports its latency and row count (the
        paper's separately-plotted "database access time" component).
        """
        self.inverted.instrument(obs)
        self.forward.instrument(obs)

    def close(self) -> None:
        """Close the underlying connection."""
        # Shutdown path: callers stop issuing queries before closing, and
        # taking the write lock here could hang shutdown behind a stuck
        # reader.
        self._connection.close()  # repro: ignore[RPR011]

    def __enter__(self) -> "SQLiteIndexStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SQLiteInvertedIndex(InvertedIndexBase):
    """Inverted index view over a :class:`SQLiteIndexStore` connection.

    Lookups hold the store's reader-writer lock in shared mode (see the
    store's concurrency model); the lock context is never nested, so a
    waiting writer cannot deadlock a reader.
    """

    def __init__(self, connection: sqlite3.Connection,
                 lock: _ReadWriteLock) -> None:
        self._connection = connection  # guarded by: _lock
        self._lock = lock

    def postings(self, concept_id: ConceptId) -> Sequence[DocId]:
        obs = self._obs
        if obs is None:
            with self._lock.read():
                rows = self._connection.execute(
                    "SELECT doc FROM postings WHERE concept = ?",
                    (concept_id,)
                ).fetchall()
            return tuple(row[0] for row in rows)
        start = time.perf_counter()
        with self._lock.read():
            rows = self._connection.execute(
                "SELECT doc FROM postings WHERE concept = ?", (concept_id,)
            ).fetchall()
        obs.record_io("index.postings", start, time.perf_counter(),
                      len(rows), backend="sqlite")
        return tuple(row[0] for row in rows)

    def indexed_concepts(self) -> Iterator[ConceptId]:
        with self._lock.read():
            rows = self._connection.execute(
                "SELECT DISTINCT concept FROM postings"
            ).fetchall()
        return (row[0] for row in rows)

    def document_frequency(self, concept_id: ConceptId) -> int:
        with self._lock.read():
            row = self._connection.execute(
                "SELECT COUNT(*) FROM postings WHERE concept = ?",
                (concept_id,)
            ).fetchone()
        return int(row[0])


class SQLiteForwardIndex(ForwardIndexBase):
    """Forward index view over a :class:`SQLiteIndexStore` connection.

    Lookups hold the store's reader-writer lock in shared mode; the
    :meth:`concepts` existence probe runs inside the *same* lock scope
    as its main query, so the two statements see one corpus state.
    """

    def __init__(self, connection: sqlite3.Connection,
                 lock: _ReadWriteLock) -> None:
        self._connection = connection  # guarded by: _lock
        self._lock = lock

    def concepts(self, doc_id: DocId) -> Sequence[ConceptId]:
        obs = self._obs
        start = time.perf_counter() if obs is not None else 0.0
        with self._lock.read():
            rows = self._connection.execute(
                "SELECT concept FROM forward WHERE doc = ? "
                "ORDER BY concept",
                (doc_id,),
            ).fetchall()
            known = bool(rows) or self._connection.execute(
                "SELECT n FROM doc_size WHERE doc = ?", (doc_id,)
            ).fetchone() is not None
        if obs is not None:
            obs.record_io("index.forward", start, time.perf_counter(),
                          len(rows), backend="sqlite")
        if not known:
            raise UnknownDocumentError(doc_id)
        return tuple(row[0] for row in rows)

    def concept_count(self, doc_id: DocId) -> int:
        obs = self._obs
        start = time.perf_counter() if obs is not None else 0.0
        with self._lock.read():
            row = self._connection.execute(
                "SELECT n FROM doc_size WHERE doc = ?", (doc_id,)
            ).fetchone()
        if obs is not None:
            obs.record_io("index.doc_size", start, time.perf_counter(),
                          1 if row is not None else 0, backend="sqlite")
        if row is None:
            raise UnknownDocumentError(doc_id)
        return int(row[0])

    def doc_ids(self) -> Iterator[DocId]:
        with self._lock.read():
            rows = self._connection.execute(
                "SELECT doc FROM doc_size").fetchall()
        return (row[0] for row in rows)

    def __len__(self) -> int:
        with self._lock.read():
            row = self._connection.execute(
                "SELECT COUNT(*) FROM doc_size"
            ).fetchone()
        return int(row[0])
