"""In-memory dictionary-backed corpus indexes.

The default backend: postings and forward lists live in plain dicts of
tuples.  Construction validates that every indexed concept exists in the
ontology when one is supplied, catching extraction bugs at build time
instead of as silently-wrong distances at query time.

When an :class:`repro.obs.Observability` bundle is attached (via the
``instrument`` hook inherited from the base interfaces), lookups report
I/O timing and row counts — dictionary reads are nearly free, but the
uniform accounting keeps backend comparisons honest.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import UnknownConceptError, UnknownDocumentError
from repro.index.base import ForwardIndexBase, InvertedIndexBase
from repro.ontology.graph import Ontology
from repro.types import ConceptId, DocId


class MemoryInvertedIndex(InvertedIndexBase):
    """Concept -> tuple of doc ids, in corpus insertion order."""

    def __init__(self) -> None:
        self._postings: dict[ConceptId, tuple[DocId, ...]] = {}

    @classmethod
    def from_collection(cls, collection: DocumentCollection, *,
                        ontology: Ontology | None = None
                        ) -> "MemoryInvertedIndex":
        """Build from a collection, optionally validating concept ids."""
        builder: dict[ConceptId, list[DocId]] = {}
        for document in collection:
            for concept_id in document.concepts:
                if ontology is not None and concept_id not in ontology:
                    raise UnknownConceptError(concept_id)
                builder.setdefault(concept_id, []).append(document.doc_id)
        index = cls()
        index._postings = {
            concept_id: tuple(doc_ids)
            for concept_id, doc_ids in builder.items()
        }
        return index

    def postings(self, concept_id: ConceptId) -> Sequence[DocId]:
        obs = self._obs
        if obs is None:
            return self._postings.get(concept_id, ())
        start = time.perf_counter()
        rows = self._postings.get(concept_id, ())
        obs.record_io("index.postings", start, time.perf_counter(),
                      len(rows), backend="memory")
        return rows

    def indexed_concepts(self) -> Iterator[ConceptId]:
        return iter(self._postings)

    def document_frequency(self, concept_id: ConceptId) -> int:
        return len(self._postings.get(concept_id, ()))

    # ------------------------------------------------------------------
    # Incremental maintenance (the paper's on-the-fly insertion story)
    # ------------------------------------------------------------------
    def add_document(self, document: Document, *,
                     ontology: Ontology | None = None) -> None:
        """Index one new document; O(#concepts in the document)."""
        for concept_id in document.concepts:
            if ontology is not None and concept_id not in ontology:
                raise UnknownConceptError(concept_id)
            existing = self._postings.get(concept_id, ())
            self._postings[concept_id] = existing + (document.doc_id,)

    def remove_document(self, document: Document) -> None:
        """Drop one document's postings entries."""
        for concept_id in document.concepts:
            remaining = tuple(
                doc_id for doc_id in self._postings.get(concept_id, ())
                if doc_id != document.doc_id
            )
            if remaining:
                self._postings[concept_id] = remaining
            else:
                self._postings.pop(concept_id, None)


class MemoryForwardIndex(ForwardIndexBase):
    """Doc id -> tuple of concepts (sorted, as stored on the document)."""

    def __init__(self) -> None:
        self._concepts: dict[DocId, tuple[ConceptId, ...]] = {}

    @classmethod
    def from_collection(cls, collection: DocumentCollection
                        ) -> "MemoryForwardIndex":
        index = cls()
        index._concepts = {
            document.doc_id: document.concepts for document in collection
        }
        return index

    def concepts(self, doc_id: DocId) -> Sequence[ConceptId]:
        obs = self._obs
        if obs is None:
            try:
                return self._concepts[doc_id]
            except KeyError:
                raise UnknownDocumentError(doc_id) from None
        start = time.perf_counter()
        try:
            rows = self._concepts[doc_id]
        except KeyError:
            raise UnknownDocumentError(doc_id) from None
        obs.record_io("index.forward", start, time.perf_counter(),
                      len(rows), backend="memory")
        return rows

    def concept_count(self, doc_id: DocId) -> int:
        try:
            return len(self._concepts[doc_id])
        except KeyError:
            raise UnknownDocumentError(doc_id) from None

    def add_document(self, document: Document) -> None:
        """Index one new document; O(1)."""
        self._concepts[document.doc_id] = document.concepts

    def remove_document(self, doc_id: DocId) -> None:
        """Drop one document's forward entry."""
        try:
            del self._concepts[doc_id]
        except KeyError:
            raise UnknownDocumentError(doc_id) from None

    def doc_ids(self) -> Iterator[DocId]:
        return iter(self._concepts)

    def __len__(self) -> int:
        return len(self._concepts)
