"""Process-wide metrics: counters, gauges, histograms, and exporters.

A :class:`MetricsRegistry` owns named instruments (get-or-create by name,
so instrumented modules never need wiring order) and can snapshot itself
to JSON or render the Prometheus text exposition format.  The registry is
the *global* aggregation point; the *per-query* recording surface is
:class:`QueryTelemetry`, a slotted scope that the search algorithms fill
with the same near-zero cost as a plain attribute increment and then
``publish`` into a registry when the query ends.  The legacy
:class:`repro.core.results.QueryStats` object that the paper-figure
benchmarks read is built *from* a ``QueryTelemetry`` — the metrics layer
is the source of truth.

Metric names use dotted paths (``knds.nodes_visited``); the Prometheus
exporter rewrites them to the ``knds_nodes_visited`` form the text format
requires.
"""

from __future__ import annotations

import bisect
import json
import threading
from pathlib import Path
from typing import Any, Final, TextIO, TypeVar

DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Default histogram buckets (seconds), tuned for query latencies."""

PROBE_BUCKETS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 0.1, 1.0,
)
"""Finer buckets (seconds) for per-probe distance computations."""

WORK_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 25000.0, 50000.0,
)
"""Buckets for work-per-query histograms (probe/candidate *counts*, not
seconds) — a 1-2.5-5 ladder spanning a trivial query to a forced
full-corpus round at the paper's 50k queue limit."""


class Counter:
    """A monotonically increasing sum (events, rows, seconds...)."""

    kind = "counter"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0  # guarded by: _lock (writes)
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current cumulative value."""
        return self._value

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: ``{"type", "help", "value"}``."""
        return {"type": self.kind, "help": self.help, "value": self._value}

    def reset(self) -> None:
        """Zero the counter (benchmark harness hygiene)."""
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down (queue depth, corpus size...)."""

    kind = "gauge"

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0  # guarded by: _lock (writes)
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Overwrite the gauge with ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        return self._value

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: ``{"type", "help", "value"}``."""
        return {"type": self.kind, "help": self.help, "value": self._value}

    def reset(self) -> None:
        """Zero the gauge."""
        self.set(0.0)


_ScalarMetric = TypeVar("_ScalarMetric", Counter, Gauge)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    ``observe`` places a value in every bucket whose upper bound is at
    least the value; an implicit ``+Inf`` bucket catches the rest, and
    ``sum``/``count`` track the running total and observation count.
    """

    kind = "histogram"

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets or DEFAULT_LATENCY_BUCKETS))
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf; guarded by: _lock (writes)
        self._sum = 0.0  # guarded by: _lock (writes)
        self._count = 0  # guarded by: _lock (writes)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets.

        Linear interpolation inside the bucket holding the target rank
        (Prometheus ``histogram_quantile`` semantics, with 0 as the
        lower edge of the first bucket).  Observations that landed in
        the implicit ``+Inf`` bucket have no finite upper bound, so any
        quantile falling there clamps to the highest finite bucket
        bound rather than extrapolating.  Returns ``nan`` when nothing
        has been observed.

        >>> h = Histogram("t", buckets=(1.0, 2.0, 4.0))
        >>> for v in (0.5, 1.5, 3.0, 3.5): h.observe(v)
        >>> h.quantile(0.5)
        2.0
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return float("nan")
        target = q * total
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.buckets, counts):
            if cumulative + count >= target and count:
                fraction = (target - cumulative) / count
                return lower + (bound - lower) * fraction
            cumulative += count
            lower = bound
        # Target rank sits in the +Inf bucket: clamp to the last finite
        # bound (there is nothing to interpolate toward).
        return self.buckets[-1]

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view with *cumulative* bucket counts."""
        cumulative: list[dict[str, Any]] = []
        running = 0
        for bound, count in zip(self.buckets, self._counts):
            running += count
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": "+Inf", "count": self._count})
        return {"type": self.kind, "help": self.help, "count": self._count,
                "sum": self._sum, "buckets": cumulative}

    def reset(self) -> None:
        """Drop all observations."""
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


class MetricsRegistry:
    """Named instruments with get-or-create access and two exporters.

    >>> registry = MetricsRegistry()
    >>> registry.counter("knds.nodes_visited").inc(7)
    >>> registry.counter("knds.nodes_visited").value
    7.0
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}  # guarded by: _lock
        self._lock = threading.Lock()

    # -- get-or-create --------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        """Return the counter ``name``, creating it on first use."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Return the gauge ``name``, creating it on first use."""
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] | None = None) -> Histogram:
        """Return the histogram ``name``, creating it on first use."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help, buckets)
                self._metrics[name] = metric
        if not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def _get_or_create(self, cls: type[_ScalarMetric], name: str,
                       help: str) -> _ScalarMetric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    # -- introspection --------------------------------------------------
    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def snapshot(self) -> dict[str, Any]:
        """One JSON-ready dict: metric name -> typed snapshot."""
        with self._lock:
            metrics = dict(self._metrics)
        return {name: metric.snapshot()
                for name, metric in sorted(metrics.items())}

    # -- exporters ------------------------------------------------------
    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot serialized as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Dotted metric names are rewritten (``drc.probes`` ->
        ``drc_probes``); histograms expand to the standard
        ``_bucket``/``_sum``/``_count`` series.
        """
        lines: list[str] = []
        for name, data in self.snapshot().items():
            flat = _prometheus_name(name)
            if data["help"]:
                lines.append(
                    f"# HELP {flat} {_escape_help(data['help'])}")
            lines.append(f"# TYPE {flat} {data['type']}")
            if data["type"] == "histogram":
                for bucket in data["buckets"]:
                    bound = bucket["le"]
                    le = "+Inf" if bound == "+Inf" else _format_value(bound)
                    le = _escape_label_value(le)
                    lines.append(
                        f'{flat}_bucket{{le="{le}"}} {bucket["count"]}')
                lines.append(f"{flat}_sum {_format_value(data['sum'])}")
                lines.append(f"{flat}_count {data['count']}")
            else:
                lines.append(f"{flat} {_format_value(data['value'])}")
        return "\n".join(lines) + "\n"

    def write(self, target: str | Path | TextIO,
              fmt: str | None = None) -> None:
        """Write a snapshot to ``target``.

        ``fmt`` is ``"json"`` or ``"prometheus"``; when omitted it is
        inferred from the file suffix (``.prom``/``.txt`` -> Prometheus,
        anything else -> JSON).
        """
        if fmt is None:
            suffix = Path(str(target)).suffix.lower() \
                if not hasattr(target, "write") else ""
            fmt = "prometheus" if suffix in (".prom", ".txt") else "json"
        if fmt == "prometheus":
            text = self.to_prometheus()
        elif fmt == "json":
            text = self.to_json() + "\n"
        else:
            raise ValueError(f"unknown metrics format: {fmt!r}")
        if hasattr(target, "write"):
            target.write(text)
        else:
            Path(target).write_text(text, encoding="utf-8")

    def reset(self) -> None:
        """Zero every registered instrument (registrations are kept)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()


def _prometheus_name(name: str) -> str:
    return "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text per the exposition format (v0.0.4).

    Backslash and line feed are the only characters the format escapes
    in help text; a raw newline would otherwise split the comment into
    a malformed next line.
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    """Escape a label value: backslash, double-quote, and line feed."""
    return (text.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL_REGISTRY


QUERY_TELEMETRY_FIELDS = (
    "total_seconds", "distance_seconds", "traversal_seconds", "io_seconds",
    "drc_calls", "covered_shortcuts", "docs_examined", "docs_touched",
    "docs_pruned", "bfs_levels", "nodes_visited", "forced_rounds",
    "arena_calls",
)
"""Per-query scalars recorded by the search algorithms, in a stable order.

:class:`repro.core.results.QueryStats` mirrors these field for field;
``QueryStats.from_metrics`` consumes any object carrying them.
"""

_PUBLISH_NAMES: Final[dict[str, str]] = {
    "nodes_visited": "nodes_visited",
    "docs_pruned": "candidates_pruned",
    "docs_examined": "docs_examined",
    "docs_touched": "docs_touched",
    "covered_shortcuts": "covered_shortcuts",
    "forced_rounds": "forced_rounds",
    "bfs_levels": "bfs_levels",
    "drc_calls": "drc_calls",
    "arena_calls": "arena_calls",
    "traversal_seconds": "traversal_seconds",
    "distance_seconds": "distance_seconds",
    "io_seconds": "io_seconds",
}


class QueryTelemetry:
    """Per-query metrics scope: the recording surface of the hot path.

    Slotted and lock-free — one query is evaluated by one thread — so an
    increment costs the same as the plain dataclass attribute writes it
    replaced.  When the query finishes the scope is folded into a
    :class:`MetricsRegistry` (:meth:`publish`) and into the
    :class:`~repro.core.results.QueryStats` handed back to callers
    (``QueryStats.from_metrics``).
    """

    __slots__ = QUERY_TELEMETRY_FIELDS

    def __init__(self) -> None:
        self.total_seconds = 0.0
        self.distance_seconds = 0.0
        self.traversal_seconds = 0.0
        self.io_seconds = 0.0
        self.drc_calls = 0
        self.covered_shortcuts = 0
        self.docs_examined = 0
        self.docs_touched = 0
        self.docs_pruned = 0
        self.bfs_levels = 0
        self.nodes_visited = 0
        self.forced_rounds = 0
        self.arena_calls = 0

    def as_dict(self) -> dict[str, float]:
        """All fields as a plain dict (stable key order)."""
        return {name: getattr(self, name)
                for name in QUERY_TELEMETRY_FIELDS}

    def publish(self, registry: MetricsRegistry, *,
                prefix: str = "knds") -> None:
        """Fold this query's scalars into ``registry`` as ``prefix.*``.

        Counter names follow the paper's vocabulary where it has one:
        ``docs_pruned`` publishes as ``<prefix>.candidates_pruned``.
        ``total_seconds`` is intentionally *not* published — end-to-end
        latency belongs to the engine's ``query.latency_seconds``
        histogram, which also covers facade overhead.
        """
        for field, metric in _PUBLISH_NAMES.items():
            value = getattr(self, field)
            if value:
                registry.counter(f"{prefix}.{metric}").inc(value)
