"""Lightweight hierarchical span tracing for the search stack.

A :class:`Tracer` hands out :class:`Span` context managers; spans nest
through a per-thread stack, carry free-form attributes, and are collected
on completion so a whole query run can be exported afterwards — either as
JSON lines (one span per line, ``parent_id`` links encoding the tree) or
in the Chrome trace-event format that ``chrome://tracing`` / Perfetto
renders as a flame graph.

The default wiring throughout the library is :data:`NULL_TRACER`, whose
``span``/``record`` calls allocate nothing and return a shared no-op
handle, so instrumented code paths cost almost nothing until a caller
opts in by attaching a real tracer (see :class:`repro.obs.Observability`).

Timestamps are ``time.perf_counter()`` offsets from the tracer's creation
(its *epoch*), which keeps spans comparable across threads; the absolute
wall-clock epoch is exported alongside for correlation with logs.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path
from typing import Any, TextIO


class Span:
    """One timed operation: a name, a window, attributes, and a parent.

    Spans are context managers; entering records the start offset and the
    parent (the innermost span open on the same thread), exiting records
    the end offset and hands the finished span to the tracer::

        with tracer.span("engine.query", k=10) as span:
            ...
            span.set_attribute("results", 10)
    """

    __slots__ = ("_tracer", "name", "attributes", "span_id", "parent_id",
                 "thread_id", "start", "end")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = next(tracer._ids)
        self.parent_id: int | None = None
        self.thread_id = 0
        self.start = 0.0
        self.end = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        """Span length in seconds (0 until the span has ended)."""
        return max(0.0, self.end - self.start)

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._exit(self)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view of the finished span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
        }


class _NullSpan:
    """The shared do-nothing span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        """Discard the attribute."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullTracer:
    """No-op tracer: the near-free default for uninstrumented runs.

    ``span`` and ``record`` accept the same arguments as :class:`Tracer`
    but allocate nothing and always return the same inert handle, so a
    hot loop guarded only by this tracer stays within noise of the
    uninstrumented baseline.
    """

    __slots__ = ()

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        """Return the shared no-op span handle."""
        return _NULL_SPAN

    def record(self, name: str, start: float, end: float,
               **attributes: Any) -> None:
        """Discard an already-measured span."""

    def to_dicts(self) -> list[dict[str, Any]]:
        """Always empty: nothing is ever collected."""
        return []


_NULL_SPAN = _NullSpan()

NULL_TRACER = NullTracer()
"""Process-wide no-op tracer instance (safe to share: it has no state)."""


class Tracer:
    """Collects hierarchical spans for one instrumented run.

    Thread-safe: each thread keeps its own open-span stack, finished
    spans are appended under a lock, and timestamps share one epoch.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.finished: list[Span] = []

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        """Create a span; use as ``with tracer.span("name", k=3): ...``."""
        return Span(self, name, attributes)

    def record(self, name: str, start: float, end: float,
               **attributes: Any) -> None:
        """Record an operation that was timed externally.

        ``start``/``end`` are raw ``time.perf_counter()`` readings; the
        span is parented to whatever span is currently open on the
        calling thread.  This is the cheap path for very frequent leaf
        operations (index I/O) where a full context manager per call
        would dominate the measured work.
        """
        span = Span(self, name, attributes)
        span.parent_id = self._stack()[-1] if self._stack() else None
        span.thread_id = threading.get_ident()
        span.start = start - self._epoch
        span.end = end - self._epoch
        with self._lock:
            self.finished.append(span)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1] if stack else None
        span.thread_id = threading.get_ident()
        span.start = time.perf_counter() - self._epoch
        stack.append(span.span_id)

    def _exit(self, span: Span) -> None:
        span.end = time.perf_counter() - self._epoch
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        elif span.span_id in stack:  # tolerate interleaved generators
            stack.remove(span.span_id)
        with self._lock:
            self.finished.append(span)

    # -- exporters ------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """Finished spans as JSON-ready dicts, in completion order."""
        with self._lock:
            return [span.to_dict() for span in self.finished]

    def export_jsonl(self, target: str | Path | TextIO) -> int:
        """Write one JSON object per span; returns the span count.

        The first line is a header record carrying the wall-clock epoch;
        every following line is a span with ``span_id``/``parent_id``
        links describing the nesting tree.
        """
        rows = self.to_dicts()
        header = {"record": "header", "wall_epoch": self.wall_epoch,
                  "spans": len(rows)}
        lines = [json.dumps(header, default=str)]
        lines.extend(json.dumps(row, default=str) for row in rows)
        _write_text(target, "\n".join(lines) + "\n")
        return len(rows)

    def export_chrome(self, target: str | Path | TextIO) -> int:
        """Write the Chrome trace-event JSON; returns the span count.

        Load the file in ``chrome://tracing`` or https://ui.perfetto.dev
        to see the query as a flame graph.  Durations use complete
        (``"ph": "X"``) events with microsecond timestamps.
        """
        rows = self.to_dicts()
        events = [
            {
                "name": row["name"],
                "cat": "repro",
                "ph": "X",
                "ts": row["start"] * 1e6,
                "dur": row["duration"] * 1e6,
                "pid": 1,
                "tid": row["thread"],
                "args": row["attributes"],
            }
            for row in rows
        ]
        _write_text(target, json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, default=str))
        return len(rows)

    def clear(self) -> None:
        """Drop all finished spans (between benchmark iterations)."""
        with self._lock:
            self.finished.clear()


def _write_text(target: str | Path | TextIO, text: str) -> None:
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text, encoding="utf-8")
