"""Request-scoped hierarchical span tracing for the search stack.

A :class:`Tracer` hands out :class:`Span` context managers.  Every span
carries a 128-bit ``trace_id`` shared by all spans of one request and a
64-bit ``span_id`` of its own; nesting flows through a
:mod:`contextvars` context variable rather than a per-thread stack, so
the active span follows the request across ``await`` points and — when
the submitter copies its context — across thread-pool hops
(see :meth:`repro.serve.service.QueryService`).  Finished spans are
collected on completion so a whole query run can be exported afterwards,
either as JSON lines (one span per line, ``parent_id`` links encoding
the tree) or in the Chrome trace-event format that ``chrome://tracing``
/ Perfetto renders as a flame graph.

Trace context crosses process boundaries as a W3C ``traceparent`` header
(``00-{trace_id:032x}-{span_id:016x}-{flags:02x}``); use
:func:`parse_traceparent` / :func:`format_traceparent` at the edges and
:func:`current_context` anywhere in between.  Sampling is *deterministic
head sampling*: whether a trace is collected is a pure function of its
``trace_id`` and the tracer's ``sample_rate`` (:func:`head_sample`), so
every process — and the load generator — agrees on the decision without
coordination.  Unsampled spans still propagate context (children, remote
ids) but are never buffered.

The default wiring throughout the library is :data:`NULL_TRACER`, whose
``span``/``record`` calls allocate nothing and return a shared no-op
handle, so instrumented code paths cost almost nothing until a caller
opts in by attaching a real tracer (see :class:`repro.obs.Observability`).

Timestamps are ``time.perf_counter()`` offsets from the tracer's creation
(its *epoch*), which keeps spans comparable across threads; the absolute
wall-clock epoch is exported alongside for correlation with logs.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import random
import re
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, TextIO

_TRACEPARENT_RE = re.compile(
    r"\A([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})\Z")

_SAMPLE_BITS = 56
_SAMPLE_MASK = (1 << _SAMPLE_BITS) - 1

TRACEPARENT_HEADER = "traceparent"
"""Canonical (lowercase) name of the W3C trace-context header."""


@dataclass(frozen=True)
class SpanContext:
    """The propagated identity of a span: trace id, span id, sampling bit.

    This is the part of a span that crosses boundaries — into worker
    threads, over HTTP as a ``traceparent`` header, into log lines.  It
    is immutable and carries no timing or attributes.
    """

    trace_id: int
    span_id: int
    sampled: bool = True

    @property
    def trace_id_hex(self) -> str:
        """The 128-bit trace id as 32 lowercase hex digits."""
        return f"{self.trace_id:032x}"

    @property
    def span_id_hex(self) -> str:
        """The 64-bit span id as 16 lowercase hex digits."""
        return f"{self.span_id & ((1 << 64) - 1):016x}"

    @property
    def traceparent(self) -> str:
        """This context encoded as a W3C ``traceparent`` header value."""
        return format_traceparent(self)


def format_traceparent(context: SpanContext) -> str:
    """Encode ``context`` as a version-00 ``traceparent`` header value."""
    flags = "01" if context.sampled else "00"
    return f"00-{context.trace_id_hex}-{context.span_id_hex}-{flags}"


def parse_traceparent(header: str | None) -> SpanContext | None:
    """Parse a W3C ``traceparent`` header; ``None`` when absent/malformed.

    Malformed input (wrong field widths, uppercase hex, version ``ff``,
    all-zero trace or span id) yields ``None`` rather than raising, so
    the HTTP layer degrades to starting a fresh root trace.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip())
    if match is None:
        return None
    version, trace_hex, span_hex, flags_hex = match.groups()
    if version == "ff":
        return None
    trace_id = int(trace_hex, 16)
    span_id = int(span_hex, 16)
    if trace_id == 0 or span_id == 0:
        return None
    sampled = bool(int(flags_hex, 16) & 0x01)
    return SpanContext(trace_id=trace_id, span_id=span_id, sampled=sampled)


def head_sample(trace_id: int, rate: float) -> bool:
    """Deterministic head-sampling decision for ``trace_id`` at ``rate``.

    A pure function of the trace id's low 56 bits, so every participant
    (server, shards, load generator) reaches the same verdict for the
    same trace without coordination.
    """
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return (trace_id & _SAMPLE_MASK) < int(rate * (1 << _SAMPLE_BITS))


class Span:
    """One timed operation: a name, a window, attributes, and a parent.

    Spans are context managers; entering resolves the parent (an explicit
    ``parent=`` hint, else whatever span or remote :class:`SpanContext`
    is active in the current :mod:`contextvars` context), inherits or
    mints the trace id, and records the start offset; exiting records the
    end offset and — when the trace is sampled — hands the finished span
    to the tracer::

        with tracer.span("engine.query", k=10) as span:
            ...
            span.set_attribute("results", 10)
    """

    __slots__ = ("_tracer", "name", "attributes", "span_id", "parent_id",
                 "trace_id", "sampled", "thread_id", "start", "end",
                 "_parent_hint", "_previous")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: dict[str, Any],
                 parent: "Span | SpanContext | None" = None) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self.span_id = next(tracer._ids)
        self.parent_id: int | None = None
        self.trace_id = 0
        self.sampled = True
        self.thread_id = 0
        self.start = 0.0
        self.end = 0.0
        self._parent_hint = parent
        self._previous: Span | SpanContext | None = None

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute on the span."""
        self.attributes[key] = value

    @property
    def duration(self) -> float:
        """Span length in seconds (0 until the span has ended)."""
        return max(0.0, self.end - self.start)

    @property
    def context(self) -> SpanContext:
        """This span's propagatable identity (valid once entered)."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id,
                           sampled=self.sampled)

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._exit(self)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view of the finished span."""
        return {
            "name": self.name,
            "trace_id": f"{self.trace_id:032x}",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread_id,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
        }


_ACTIVE: "contextvars.ContextVar[Span | SpanContext | None]" = \
    contextvars.ContextVar("repro_active_span", default=None)


def current_span() -> Span | None:
    """The span active in the current context, if any.

    Returns ``None`` when nothing is active *or* when the active context
    is a remote :class:`SpanContext` (attached, not locally opened).
    """
    active = _ACTIVE.get()
    return active if isinstance(active, Span) else None


def current_context() -> SpanContext | None:
    """The propagatable trace context active right now, if any."""
    active = _ACTIVE.get()
    if isinstance(active, Span):
        return active.context
    return active


@contextmanager
def attach(context: SpanContext | None) -> Iterator[None]:
    """Make ``context`` the active parent for spans opened inside.

    Used to re-root tracing under a remote parent (a parsed
    ``traceparent``) without opening a local span, or to detach
    (``attach(None)``) for background work that must not inherit the
    caller's trace.
    """
    token = _ACTIVE.set(context)
    try:
        yield
    finally:
        _ACTIVE.reset(token)


class _NullSpan:
    """The shared do-nothing span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        """Discard the attribute."""

    @property
    def context(self) -> None:
        """No identity: the null span never propagates context."""
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class NullTracer:
    """No-op tracer: the near-free default for uninstrumented runs.

    ``span`` and ``record`` accept the same arguments as :class:`Tracer`
    but allocate nothing and always return the same inert handle, so a
    hot loop guarded only by this tracer stays within noise of the
    uninstrumented baseline.
    """

    __slots__ = ()

    def span(self, name: str, parent: Span | SpanContext | None = None,
             **attributes: Any) -> _NullSpan:
        """Return the shared no-op span handle."""
        return _NULL_SPAN

    def record(self, name: str, start: float, end: float,
               **attributes: Any) -> None:
        """Discard an already-measured span."""

    def to_dicts(self) -> list[dict[str, Any]]:
        """Always empty: nothing is ever collected."""
        return []

    def take_trace(self, trace_id: int) -> list[dict[str, Any]]:
        """Always empty: nothing is ever collected."""
        return []


_NULL_SPAN = _NullSpan()

NULL_TRACER = NullTracer()
"""Process-wide no-op tracer instance (safe to share: it has no state)."""


class Tracer:
    """Collects hierarchical spans for instrumented requests.

    Thread-safe: the active span travels in a :mod:`contextvars` context
    variable (per-thread and per-task by construction; copyable across
    executor hops), finished spans are appended under a lock, and
    timestamps share one epoch.

    Parameters
    ----------
    sample_rate:
        Fraction of root traces collected, decided deterministically from
        the trace id (:func:`head_sample`).  Children and remote parents
        inherit the decision; unsampled spans still propagate context but
        are never buffered.
    max_spans:
        Bound on the finished-span buffer; once full, the oldest span is
        dropped (counted in :attr:`spans_dropped`).  ``None`` keeps
        everything (the original batch-export behaviour).
    seed:
        Seed for the trace-id generator — fixed seeds give reproducible
        trace ids (and therefore reproducible sampling) in benchmarks.
    """

    def __init__(self, *, sample_rate: float = 1.0,
                 max_spans: int | None = None,
                 seed: int | None = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}")
        if max_spans is not None and max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self._epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self._ids = itertools.count(1)
        self._rng = random.Random(seed)  # guarded by: _lock
        self._lock = threading.Lock()
        self.finished: deque[Span] = deque(maxlen=max_spans)  # guarded by: _lock
        self.spans_started = 0  # guarded by: _lock
        self.spans_collected = 0  # guarded by: _lock
        self.spans_dropped = 0  # guarded by: _lock

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, parent: Span | SpanContext | None = None,
             **attributes: Any) -> Span:
        """Create a span; use as ``with tracer.span("name", k=3): ...``.

        ``parent`` overrides the ambient context — pass a parsed remote
        :class:`SpanContext` at a service edge to continue the caller's
        trace.  Without it the span parents to whatever is active in the
        current context (or starts a new sampled-or-not root trace).
        """
        return Span(self, name, attributes, parent=parent)

    def record(self, name: str, start: float, end: float,
               **attributes: Any) -> None:
        """Record an operation that was timed externally.

        ``start``/``end`` are raw ``time.perf_counter()`` readings; the
        span is parented to whatever context is currently active.  This
        is the cheap path for very frequent leaf operations (index I/O)
        where a full context manager per call would dominate the
        measured work.
        """
        span = Span(self, name, attributes)
        self._inherit(span, _ACTIVE.get())
        if not span.sampled:
            return
        span.thread_id = threading.get_ident()
        span.start = start - self._epoch
        span.end = end - self._epoch
        with self._lock:
            self._collect(span)

    def _new_trace_id(self) -> int:
        with self._lock:
            trace_id = self._rng.getrandbits(128)
            while trace_id == 0:  # all-zero is invalid in traceparent
                trace_id = self._rng.getrandbits(128)
        return trace_id

    def _inherit(self, span: Span,
                 parent: Span | SpanContext | None) -> None:
        """Resolve ``span``'s parent/trace/sampling from ``parent``."""
        if isinstance(parent, Span):
            parent = parent.context
        if parent is not None:
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
            span.sampled = parent.sampled
        else:
            span.trace_id = self._new_trace_id()
            span.sampled = head_sample(span.trace_id, self.sample_rate)

    def _enter(self, span: Span) -> None:
        previous = _ACTIVE.get()
        parent = span._parent_hint if span._parent_hint is not None \
            else previous
        self._inherit(span, parent)
        span.thread_id = threading.get_ident()
        span.start = time.perf_counter() - self._epoch
        span._previous = previous
        _ACTIVE.set(span)
        with self._lock:
            self.spans_started += 1

    def _exit(self, span: Span) -> None:
        span.end = time.perf_counter() - self._epoch
        # Restore only when we are still the active span; interleaved
        # exits (generators) leave the deeper span in place instead of
        # clobbering it.
        if _ACTIVE.get() is span:
            _ACTIVE.set(span._previous)
        span._previous = None
        if span.sampled:
            with self._lock:
                self._collect(span)

    def _collect(self, span: Span) -> None:  # holds: _lock
        """Append one finished span (caller holds the lock)."""
        if self.finished.maxlen is not None \
                and len(self.finished) == self.finished.maxlen:
            self.spans_dropped += 1
        self.finished.append(span)
        self.spans_collected += 1

    def take_trace(self, trace_id: int) -> list[dict[str, Any]]:
        """Remove and return all finished spans of one trace, as dicts.

        Spans come back in completion order (leaves before their
        parents).  Used by the flight recorder to move a slow request's
        span tree out of the shared ring and into its own record.
        """
        with self._lock:
            matched = [span for span in self.finished
                       if span.trace_id == trace_id]
            if matched:
                kept = [span for span in self.finished
                        if span.trace_id != trace_id]
                self.finished.clear()
                self.finished.extend(kept)
        return [span.to_dict() for span in matched]

    # -- exporters ------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """Finished spans as JSON-ready dicts, in completion order."""
        with self._lock:
            return [span.to_dict() for span in self.finished]

    def export_jsonl(self, target: str | Path | TextIO) -> int:
        """Write one JSON object per span; returns the span count.

        The first line is a header record carrying the wall-clock epoch;
        every following line is a span with ``span_id``/``parent_id``
        links describing the nesting tree.
        """
        rows = self.to_dicts()
        header = {"record": "header", "wall_epoch": self.wall_epoch,
                  "spans": len(rows)}
        lines = [json.dumps(header, default=str)]
        lines.extend(json.dumps(row, default=str) for row in rows)
        _write_text(target, "\n".join(lines) + "\n")
        return len(rows)

    def export_chrome(self, target: str | Path | TextIO) -> int:
        """Write the Chrome trace-event JSON; returns the span count.

        Load the file in ``chrome://tracing`` or https://ui.perfetto.dev
        to see the query as a flame graph.  Durations use complete
        (``"ph": "X"``) events with microsecond timestamps.
        """
        rows = self.to_dicts()
        events = [
            {
                "name": row["name"],
                "cat": "repro",
                "ph": "X",
                "ts": row["start"] * 1e6,
                "dur": row["duration"] * 1e6,
                "pid": 1,
                "tid": row["thread"],
                "args": row["attributes"],
            }
            for row in rows
        ]
        _write_text(target, json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, default=str))
        return len(rows)

    def clear(self) -> None:
        """Drop all finished spans (between benchmark iterations)."""
        with self._lock:
            self.finished.clear()


def _write_text(target: str | Path | TextIO, text: str) -> None:
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text, encoding="utf-8")
