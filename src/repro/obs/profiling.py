"""Per-query cost attribution and low-overhead runtime profiling.

Three independent pieces, all stdlib-only:

* :class:`QueryCostProfile` — the "EXPLAIN ANALYZE" record for a single
  query.  Built from the same :class:`~repro.obs.metrics.QueryTelemetry`
  scalars the search algorithms already record, plus the per-round bound
  trajectory (``D−`` vs ``Dk+``) and arena counter deltas that only the
  kNDS loop can observe.  Every field is deterministic work accounting —
  probes, kernel calls, candidates created/pruned/settled — so two runs
  of the same query on the same corpus produce identical profiles (the
  wall-clock ``seconds`` field is the one documented exception).
* :class:`StatisticalProfiler` — a sampling profiler over
  ``sys._current_frames()``: a daemon thread wakes every
  ``interval_seconds``, collapses each live thread's stack into one
  ``root;...;leaf`` line (the flamegraph "collapsed stack" format) and
  counts it.  Start/stop/snapshot API; self-measured overhead.
* :class:`ResourceSampler` — a periodic gauge publisher: named supplier
  callables (arena bytes, cache entries, queue depth, GC counts...) are
  polled and written into a :class:`~repro.obs.metrics.MetricsRegistry`
  as ``resource.*`` gauges.  ``sample_once`` is public so tests and the
  ``/debug/vars`` endpoint can force a deterministic refresh.

Cost-profile attribution caveat: the arena counters (``pair_lookups``,
``pair_kernels``, cache hits/misses) live on a *shared* arena, so the
per-query deltas are exact only while one query runs at a time.  Under
concurrent serve load they attribute whatever the arena did during the
query's window, which may include a neighbour's probes.  The remaining
fields come from the query-private telemetry scope and are always exact.
"""

from __future__ import annotations

import gc
import sys
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass
from types import FrameType
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "BoundSample",
    "CostProfileBuilder",
    "ProfileSnapshot",
    "QueryCostProfile",
    "ResourceSampler",
    "StatisticalProfiler",
]


# ----------------------------------------------------------------------
# Cost profiles (EXPLAIN ANALYZE)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BoundSample:
    """One termination-check snapshot: the bounds after a kNDS round.

    ``lower`` is the paper's ``D−`` (smallest possible distance of any
    unanalyzed document); ``kth`` is ``Dk+`` (distance of the current
    k-th best), ``None`` until k results have been settled.  The search
    terminates on the first round where ``lower >= kth``.
    """

    level: int
    lower: float
    kth: float | None

    @property
    def gap(self) -> float | None:
        """``Dk+ − D−`` — how far from termination (None before Dk+)."""
        if self.kth is None:
            return None
        return self.kth - self.lower

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view: ``{"level", "lower", "kth", "gap"}``."""
        return {"level": self.level, "lower": self.lower,
                "kth": self.kth, "gap": self.gap}


class CostProfileBuilder:
    """Mutable collection surface the kNDS loop fills while it runs.

    Only created when a caller opted into ``analyze=True`` — the hot
    path without it pays a single ``is None`` check per round.
    """

    __slots__ = ("bounds", "termination_level", "termination_reason",
                 "pair_lookups", "pair_kernels", "cache_hits",
                 "cache_misses", "_base")

    def __init__(self) -> None:
        self.bounds: list[BoundSample] = []
        self.termination_level = -1
        self.termination_reason = ""
        self.pair_lookups = 0
        self.pair_kernels = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._base: tuple[int, int, int, int] | None = None

    def note_round(self, level: int, lower: float,
                   kth: float | None) -> None:
        """Record one termination check (``D−`` vs ``Dk+`` at a level)."""
        self.bounds.append(BoundSample(level, lower, kth))

    def note_termination(self, level: int, reason: str) -> None:
        """Record where and why the search stopped."""
        self.termination_level = level
        self.termination_reason = reason

    def arena_before(self, pair_lookups: int, pair_kernels: int,
                     cache_hits: int, cache_misses: int) -> None:
        """Snapshot the shared arena counters at query start."""
        self._base = (pair_lookups, pair_kernels, cache_hits, cache_misses)

    def arena_after(self, pair_lookups: int, pair_kernels: int,
                    cache_hits: int, cache_misses: int) -> None:
        """Attribute the arena counter deltas since :meth:`arena_before`."""
        base = self._base or (0, 0, 0, 0)
        self.pair_lookups = pair_lookups - base[0]
        self.pair_kernels = pair_kernels - base[1]
        self.cache_hits = cache_hits - base[2]
        self.cache_misses = cache_misses - base[3]


@dataclass(frozen=True)
class QueryCostProfile:
    """Deterministic per-query work attribution (EXPLAIN ANALYZE).

    Assembled by :meth:`from_run` out of the query-private telemetry
    scope and a :class:`CostProfileBuilder`.  All counters except
    ``seconds`` are exact functions of (ontology, corpus, query, config)
    — see the module docstring for the shared-arena caveat on the
    ``pair_*``/``cache_*`` fields under concurrency.
    """

    algorithm: str
    query_kind: str
    k: int
    path: str
    """Settle path taken: ``"arena"`` (packed kernels) or ``"tuple"``."""
    probes: int
    """Inverted-index postings probes (one per BFS concept visited)."""
    drc_calls: int
    arena_calls: int
    pair_lookups: int
    pair_kernels: int
    cache_hits: int
    cache_misses: int
    covered_shortcuts: int
    candidates_created: int
    candidates_pruned: int
    candidates_settled: int
    rounds: int
    forced_rounds: int
    termination_level: int
    termination_reason: str
    bounds: tuple[BoundSample, ...]
    seconds: float
    """Wall-clock time — informational, NOT part of the deterministic
    signature."""

    @property
    def exact_distances(self) -> int:
        """Exact distance computations, path-independent: the arena and
        tuple paths settle the same candidates, one charges
        ``arena_calls`` and the other ``drc_calls``."""
        return self.drc_calls + self.arena_calls

    @classmethod
    def from_run(cls, stats: Any, builder: CostProfileBuilder, *,
                 algorithm: str, query_kind: str, k: int,
                 path: str) -> "QueryCostProfile":
        """Assemble a profile from a telemetry-shaped object and the
        builder the search loop filled.

        ``stats`` is duck-typed (``QueryTelemetry`` or ``QueryStats`` —
        anything carrying the telemetry field names).
        """
        return cls(
            algorithm=algorithm,
            query_kind=query_kind,
            k=k,
            path=path,
            probes=int(stats.nodes_visited),
            drc_calls=int(stats.drc_calls),
            arena_calls=int(stats.arena_calls),
            pair_lookups=builder.pair_lookups,
            pair_kernels=builder.pair_kernels,
            cache_hits=builder.cache_hits,
            cache_misses=builder.cache_misses,
            covered_shortcuts=int(stats.covered_shortcuts),
            candidates_created=int(stats.docs_touched),
            candidates_pruned=int(stats.docs_pruned),
            candidates_settled=int(stats.docs_examined),
            rounds=int(stats.bfs_levels),
            forced_rounds=int(stats.forced_rounds),
            termination_level=builder.termination_level,
            termination_reason=builder.termination_reason,
            bounds=tuple(builder.bounds),
            seconds=float(stats.total_seconds),
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready nested view (the HTTP ``cost_profile`` schema)."""
        return {
            "algorithm": self.algorithm,
            "query_kind": self.query_kind,
            "k": self.k,
            "path": self.path,
            "work": {
                "probes": self.probes,
                "drc_calls": self.drc_calls,
                "arena_calls": self.arena_calls,
                "exact_distances": self.exact_distances,
                "pair_lookups": self.pair_lookups,
                "pair_kernels": self.pair_kernels,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "covered_shortcuts": self.covered_shortcuts,
            },
            "candidates": {
                "created": self.candidates_created,
                "pruned": self.candidates_pruned,
                "settled": self.candidates_settled,
            },
            "termination": {
                "level": self.termination_level,
                "reason": self.termination_reason,
                "rounds": self.rounds,
                "forced_rounds": self.forced_rounds,
            },
            "bounds": [sample.to_dict() for sample in self.bounds],
            "seconds": self.seconds,
        }

    def deterministic_signature(self) -> dict[str, Any]:
        """The path-independent, repeat-stable subset of the profile.

        Equal across repeats of the same query *and* across the
        arena/tuple settle paths (``use_arena`` on/off): excludes
        ``seconds``, the path label, and the path-dependent split of
        exact distance work (``drc_calls``/``arena_calls``,
        ``pair_*``/``cache_*``), keeping their invariant sum.
        """
        return {
            "query_kind": self.query_kind,
            "k": self.k,
            "probes": self.probes,
            "exact_distances": self.exact_distances,
            "covered_shortcuts": self.covered_shortcuts,
            "candidates_created": self.candidates_created,
            "candidates_pruned": self.candidates_pruned,
            "candidates_settled": self.candidates_settled,
            "rounds": self.rounds,
            "forced_rounds": self.forced_rounds,
            "termination_level": self.termination_level,
            "termination_reason": self.termination_reason,
            "bounds": tuple((s.level, s.lower, s.kth) for s in self.bounds),
        }


# ----------------------------------------------------------------------
# Statistical (sampling) profiler
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProfileSnapshot:
    """Point-in-time view of a :class:`StatisticalProfiler`."""

    samples: int
    """Sampling ticks taken (each tick walks every live thread)."""
    overhead_seconds: float
    """Wall-clock time the sampler itself spent walking frames."""
    interval_seconds: float
    running: bool
    stacks: dict[str, int]
    """Collapsed stack (``root;...;leaf``) -> times observed."""

    def collapsed(self) -> list[str]:
        """Flamegraph-ready lines: ``"stack count"``, sorted by stack.

        Feed directly to ``flamegraph.pl`` / speedscope / inferno.
        """
        return [f"{stack} {count}"
                for stack, count in sorted(self.stacks.items())]

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most-sampled stacks, hottest first."""
        ranked = sorted(self.stacks.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:n]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (the ``/debug/profile`` response schema)."""
        return {
            "samples": self.samples,
            "overhead_seconds": self.overhead_seconds,
            "interval_seconds": self.interval_seconds,
            "running": self.running,
            "stacks": dict(sorted(self.stacks.items())),
        }


def _collapse(frame: FrameType | None, max_frames: int) -> str:
    """One thread's stack as a root-first ``module:function`` chain."""
    names: list[str] = []
    while frame is not None and len(names) < max_frames:
        code = frame.f_code
        module = code.co_filename.rpartition("/")[2].removesuffix(".py")
        names.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    names.reverse()
    return ";".join(names)


class StatisticalProfiler:
    """Thread-based sampling profiler over ``sys._current_frames()``.

    A daemon thread wakes every ``interval_seconds``, snapshots every
    live thread's frame (except its own), collapses each stack to a
    ``root;...;leaf`` line and counts it.  The cost per tick is a few
    tens of microseconds per thread — at the default 10 ms interval the
    steady-state overhead is well under 1% — and the sampler measures
    itself: :attr:`overhead_seconds` is the cumulative time spent inside
    the sampling loop body.

    >>> profiler = StatisticalProfiler(interval_seconds=0.001)
    >>> profiler.start(); profiler.running
    True
    >>> profiler.stop(); profiler.running
    False
    """

    def __init__(self, interval_seconds: float = 0.01,
                 max_frames: int = 64) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}")
        if max_frames <= 0:
            raise ValueError(f"max_frames must be > 0, got {max_frames}")
        self.interval_seconds = interval_seconds
        self.max_frames = max_frames
        self._stacks: dict[str, int] = {}  # guarded by: _lock
        self._samples = 0  # guarded by: _lock
        self._overhead = 0.0  # guarded by: _lock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._registry: MetricsRegistry | None = None  # guarded by: _lock
        self._published = (0, 0.0)  # guarded by: _lock

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start sampling (idempotent)."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-profiler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop sampling and wait for the thread to exit (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self._publish()

    def bind(self, registry: MetricsRegistry | None) -> None:
        """Publish ``profiler.*`` counters into ``registry`` from now on.

        Only deltas accumulated after the bind are folded in, so
        re-pointing at a fresh registry (the bench harness does) never
        double-counts.
        """
        with self._lock:
            self._registry = registry
            self._published = (self._samples, self._overhead)

    # -- data -----------------------------------------------------------
    def snapshot(self) -> ProfileSnapshot:
        """Consistent copy of the aggregated stacks and meters.

        Also folds the counter deltas into the bound registry (if any),
        so scraping ``/metrics`` right after a snapshot sees fresh
        ``profiler.samples`` / ``profiler.overhead_seconds`` values.
        """
        self._publish()
        with self._lock:
            return ProfileSnapshot(
                samples=self._samples,
                overhead_seconds=self._overhead,
                interval_seconds=self.interval_seconds,
                running=self.running,
                stacks=dict(self._stacks),
            )

    def reset(self) -> None:
        """Drop aggregated stacks and meters (keeps running state)."""
        with self._lock:
            self._stacks.clear()
            self._samples = 0
            self._overhead = 0.0
            self._published = (0, 0.0)

    # -- internals ------------------------------------------------------
    def _loop(self) -> None:
        own = threading.get_ident()
        while not self._stop.is_set():
            begin = time.perf_counter()
            frames = sys._current_frames()
            with self._lock:
                for thread_id, frame in frames.items():
                    if thread_id == own:
                        continue
                    stack = _collapse(frame, self.max_frames)
                    if stack:
                        self._stacks[stack] = self._stacks.get(stack, 0) + 1
                self._samples += 1
                self._overhead += time.perf_counter() - begin
            self._stop.wait(self.interval_seconds)

    def _publish(self) -> None:
        with self._lock:
            registry = self._registry
            if registry is None:
                return
            sample_delta = self._samples - self._published[0]
            overhead_delta = self._overhead - self._published[1]
            self._published = (self._samples, self._overhead)
        if sample_delta:
            registry.counter(
                "profiler.samples",
                "Sampling ticks taken by the statistical profiler",
            ).inc(sample_delta)
        if overhead_delta > 0:
            registry.counter(
                "profiler.overhead_seconds",
                "Wall-clock time spent inside the profiler's sampling loop",
            ).inc(overhead_delta)


# ----------------------------------------------------------------------
# Resource gauges
# ----------------------------------------------------------------------
class ResourceSampler:
    """Periodic ``resource.*`` gauge publisher.

    Suppliers are plain zero-argument callables registered under the
    gauge name they feed; :meth:`sample_once` polls every supplier and
    writes the values into the bound registry (a supplier that raises is
    skipped for that round — a dying gauge must not take the sampler
    down).  :meth:`start` runs ``sample_once`` on a daemon thread every
    ``interval_seconds``; tests and ``/debug/vars`` call
    :meth:`sample_once` directly for a deterministic refresh.
    """

    def __init__(self, interval_seconds: float = 5.0,
                 registry: MetricsRegistry | None = None) -> None:
        if interval_seconds <= 0:
            raise ValueError(
                f"interval_seconds must be > 0, got {interval_seconds}")
        self.interval_seconds = interval_seconds
        self._registry = registry  # guarded by: _lock
        self._sources: dict[str, tuple[str, Callable[[], float]]] = {}  # guarded by: _lock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def bind(self, registry: MetricsRegistry | None) -> None:
        """Re-point gauge publication at ``registry``."""
        with self._lock:
            self._registry = registry

    def add_source(self, name: str, supplier: Callable[[], float],
                   help: str = "") -> None:
        """Register (or replace) the supplier feeding gauge ``name``."""
        with self._lock:
            self._sources[name] = (help, supplier)

    def add_gc_sources(self) -> None:
        """Register the standard garbage-collector gauges.

        Per-generation collection counts plus the number of objects
        currently pending in the youngest-generation count window.
        """
        def _collections(generation: int) -> Callable[[], float]:
            def read() -> float:
                return float(gc.get_stats()[generation]["collections"])
            return read

        for generation in range(3):
            self.add_source(
                f"resource.gc_gen{generation}_collections",
                _collections(generation),
                f"GC collections of generation {generation}")
        self.add_source(
            "resource.gc_tracked_objects",
            lambda: float(sum(gc.get_count())),
            "Objects in the collector's per-generation count windows")

    def sample_once(self) -> dict[str, float]:
        """Poll every supplier, publish gauges, return the values."""
        with self._lock:
            sources = dict(self._sources)
            registry = self._registry
        values: dict[str, float] = {}
        for name in sorted(sources):
            help_text, supplier = sources[name]
            try:
                value = float(supplier())
            except Exception:
                continue
            values[name] = value
            if registry is not None:
                registry.gauge(name, help_text).set(value)
        return values

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the periodic sampling thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start periodic sampling (idempotent); samples immediately."""
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop periodic sampling (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self.interval_seconds)
