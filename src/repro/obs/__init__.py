"""repro.obs — observability for the search stack.

Three legs, each usable alone, bundled by :class:`Observability`:

* :mod:`repro.obs.tracing` — hierarchical spans with JSON-lines and
  Chrome ``chrome://tracing`` exporters (and a near-free no-op default);
* :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges
  and histograms with Prometheus-text and JSON snapshot exporters, plus
  the per-query :class:`~repro.obs.metrics.QueryTelemetry` scope that
  feeds :class:`repro.core.results.QueryStats`;
* :mod:`repro.obs.events` — the typed ``expanded``/``round``/
  ``terminated`` query-event stream (the paper's Table 2 columns, with
  stable schemas);
* :mod:`repro.obs.logging` — structured (``key=value`` / JSON-lines)
  logging setup;
* :mod:`repro.obs.profiling` — per-query cost attribution
  (:class:`~repro.obs.profiling.QueryCostProfile`, the EXPLAIN ANALYZE
  record), a sampling profiler with collapsed-stack output, and the
  periodic ``resource.*`` gauge sampler.

Attach a bundle to a :class:`~repro.core.engine.SearchEngine` (the
``obs=`` constructor argument or ``engine.instrument``) and every layer
below — kNDS, DRC, both index backends, the baselines — reports into it.
With no bundle attached (the default) the instrumentation reduces to one
``None`` check per site.
"""

from __future__ import annotations

from typing import Any

from repro.obs.events import (EVENT_TYPES, EventLog, EventStream,
                              ExpandedEvent, QueryEvent, RoundEvent,
                              TerminatedEvent)
from repro.obs.logging import (get_logger, log_context, setup_logging)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               PROBE_BUCKETS, QueryTelemetry, get_registry)
from repro.obs.profiling import (BoundSample, CostProfileBuilder,
                                 ProfileSnapshot, QueryCostProfile,
                                 ResourceSampler, StatisticalProfiler)
from repro.obs.recorder import FlightRecorder, RequestRecord, render_trace
from repro.obs.slo import SLOTracker
from repro.obs.tracing import (NULL_TRACER, NullTracer, Span, SpanContext,
                               Tracer, current_context, current_span,
                               format_traceparent, head_sample,
                               parse_traceparent)

__all__ = [
    "Observability",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanContext",
    "current_context",
    "current_span",
    "parse_traceparent",
    "format_traceparent",
    "head_sample",
    "FlightRecorder",
    "RequestRecord",
    "render_trace",
    "SLOTracker",
    "log_context",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "QueryTelemetry",
    "get_registry",
    "BoundSample",
    "CostProfileBuilder",
    "ProfileSnapshot",
    "QueryCostProfile",
    "ResourceSampler",
    "StatisticalProfiler",
    "QueryEvent",
    "ExpandedEvent",
    "RoundEvent",
    "TerminatedEvent",
    "EventStream",
    "EventLog",
    "EVENT_TYPES",
    "setup_logging",
    "get_logger",
]


class Observability:
    """One handle threading tracer + metrics + events through the stack.

    Parameters
    ----------
    tracer:
        A :class:`Tracer` to collect spans, or ``None`` for the no-op
        tracer (spans cost nothing).
    metrics:
        The :class:`MetricsRegistry` to aggregate into; defaults to the
        process-wide registry from :func:`get_registry`.
    events:
        An optional :class:`EventStream` that receives every typed query
        event in addition to any per-call ``observer``.

    The constructor pre-creates the hot-path instruments (index I/O, DRC
    probes, query latency) so instrumented loops never pay a registry
    lookup.
    """

    __slots__ = ("tracer", "metrics", "events", "io_seconds", "io_rows",
                 "drc_probes", "drc_probe_seconds", "query_latency",
                 "query_count")

    def __init__(self, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 events: EventStream | None = None) -> None:
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else get_registry()
        self.events = events
        registry = self.metrics
        self.io_seconds = registry.counter(
            "index.io_seconds", "Cumulative index I/O time")
        self.io_rows = registry.counter(
            "index.rows_read", "Rows returned by index lookups")
        self.drc_probes = registry.counter(
            "drc.probes", "Exact DRC distance computations")
        self.drc_probe_seconds = registry.histogram(
            "drc.probe_seconds", "Duration of one DRC probe",
            buckets=PROBE_BUCKETS)
        self.query_latency = registry.histogram(
            "query.latency_seconds", "End-to-end query latency")
        self.query_count = registry.counter(
            "query.count", "Queries served")

    # -- hot-path recording helpers -------------------------------------
    def record_io(self, operation: str, start: float, end: float,
                  rows: int, **attributes: Any) -> None:
        """Record one index access: a leaf span plus the I/O counters.

        ``start``/``end`` are raw ``time.perf_counter()`` readings taken
        by the caller around the actual lookup.
        """
        self.tracer.record(operation, start, end, rows=rows, **attributes)
        self.io_seconds.inc(end - start)
        self.io_rows.inc(rows)

    def record_probe(self, seconds: float) -> None:
        """Record one exact DRC distance computation."""
        self.drc_probes.inc()
        self.drc_probe_seconds.observe(seconds)

    def observe_query(self, seconds: float) -> None:
        """Record one served query's end-to-end latency."""
        self.query_latency.observe(seconds)
        self.query_count.inc()
