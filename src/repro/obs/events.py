"""Typed query-event stream for the kNDS search loop.

Formalizes the raw snapshot dicts that ``KNDSearch`` has always handed to
its ``observer`` callback (the columns of the paper's Table 2) into event
classes with *stable, declared schemas*:

========== =====================================================
event      emitted
========== =====================================================
expanded   after each breadth-first expansion level
round      after each analysis round (exact distances settled)
terminated once, when the search stops (with the stop reason)
========== =====================================================

Every event is a ``dict`` subclass, so existing observers — and the
Table 2 trace benchmark — keep working unchanged while new code can rely
on ``event.phase`` / ``event.level`` attributes and on
``type(event).SCHEMA`` for validation.  :class:`EventStream` is a fan-out
sink that can itself be passed anywhere a plain observer callable is
accepted.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, Final

SNAPSHOT_SCHEMA = ("phase", "level", "examined", "candidates", "frontier",
                   "top", "kth_distance", "global_lower")
"""Keys shared by every per-round snapshot event (Table 2's columns)."""


class QueryEvent(dict):
    """Base class of all query events: a dict with a declared schema.

    Instances are constructed with keyword fields and validated against
    the class :attr:`SCHEMA`; ``phase`` defaults to the class
    :attr:`EVENT_TYPE` so observers can keep dispatching on
    ``event["phase"]``.
    """

    EVENT_TYPE = ""
    SCHEMA: tuple[str, ...] = ()

    def __init__(self, **fields: Any) -> None:
        fields.setdefault("phase", self.EVENT_TYPE)
        declared = set(self.SCHEMA)
        missing = declared - fields.keys()
        unexpected = fields.keys() - declared
        if missing or unexpected:
            raise ValueError(
                f"{type(self).__name__} schema mismatch: "
                f"missing={sorted(missing)} unexpected={sorted(unexpected)}")
        super().__init__(fields)

    @property
    def phase(self) -> str:
        """The event kind: ``expanded``, ``round`` or ``terminated``."""
        return self["phase"]

    @property
    def level(self) -> int:
        """The BFS level the event was emitted at (the paper's ``l``)."""
        return self["level"]


class ExpandedEvent(QueryEvent):
    """One breadth-first expansion level completed (pre-analysis view)."""

    EVENT_TYPE = "expanded"
    SCHEMA = SNAPSHOT_SCHEMA


class RoundEvent(QueryEvent):
    """One analysis round completed: ``D-``/``Dk+`` are up to date."""

    EVENT_TYPE = "round"
    SCHEMA = SNAPSHOT_SCHEMA


class TerminatedEvent(QueryEvent):
    """The search stopped; ``reason`` says why.

    ``reason`` is ``"converged"`` (the global lower bound reached the
    k-th best distance — the paper's early-termination condition) or
    ``"exhausted"`` (the BFS ran out of ontology before k results
    stabilized).
    """

    EVENT_TYPE = "terminated"
    SCHEMA = SNAPSHOT_SCHEMA + ("reason",)

    @property
    def reason(self) -> str:
        """Why the search stopped: ``converged`` or ``exhausted``."""
        return self["reason"]


EVENT_TYPES: Final[dict[str, type[QueryEvent]]] = {
    cls.EVENT_TYPE: cls
    for cls in (ExpandedEvent, RoundEvent, TerminatedEvent)
}
"""Phase name -> event class, for dispatch and schema docs."""


class EventStream:
    """Fan-out event sink: one emit, many subscribers.

    The stream is callable, so it can be passed directly as the
    ``observer`` argument of :meth:`repro.core.knds.KNDSearch.rds`::

        stream = EventStream()
        stream.subscribe(events.append)
        searcher.rds(query, k=5, observer=stream)
    """

    def __init__(self, *subscribers: Callable[[QueryEvent], None]) -> None:
        self._subscribers: list[Callable[[QueryEvent], None]] = \
            list(subscribers)

    def subscribe(self, callback: Callable[[QueryEvent], None]
                  ) -> Callable[[QueryEvent], None]:
        """Register ``callback`` for every future event; returns it."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback: Callable[[QueryEvent], None]) -> None:
        """Remove a previously subscribed callback (no-op if absent).

        Matches by identity, not equality — two distinct list-like
        subscribers (e.g. :class:`EventLog`) may compare equal.
        """
        for index, subscriber in enumerate(self._subscribers):
            if subscriber is callback:
                del self._subscribers[index]
                return

    def emit(self, event: QueryEvent) -> None:
        """Deliver ``event`` to every subscriber, in subscription order."""
        for subscriber in list(self._subscribers):
            subscriber(event)

    def __call__(self, event: QueryEvent) -> None:
        self.emit(event)

    def __len__(self) -> int:
        return len(self._subscribers)


class EventLog(list):
    """A callable list: records every event it is invoked with.

    The smallest useful subscriber — handy in tests and debugging
    sessions (``log = EventLog(); searcher.rds(..., observer=log)``).
    """

    def __call__(self, event: QueryEvent) -> None:
        self.append(event)

    def phases(self) -> list[str]:
        """The ``phase`` of every recorded event, in order."""
        return [event["phase"] for event in self]
