"""Structured logging setup for the search stack.

One ``repro`` logger hierarchy, one formatter that renders records as
stable ``key=value`` pairs (or JSON lines with ``json_lines=True``), and
an idempotent :func:`setup_logging` that the CLI's ``--log-level`` flag
drives.  Library modules obtain children via :func:`get_logger` and log
normally; until ``setup_logging`` runs, records propagate to whatever
the host application configured (or nowhere), so importing the library
never spams stderr.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from types import TracebackType
from typing import Any, TextIO

ROOT_LOGGER_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_STANDARD_ATTRS = frozenset(vars(
    logging.LogRecord("", 0, "", 0, "", (), None)
)) | {"message", "asctime", "taskName"}


class StructuredFormatter(logging.Formatter):
    """Renders records as ``ts=... level=... logger=... msg=... k=v``.

    Any ``extra={...}`` fields passed at the call site are appended as
    additional ``key=value`` pairs; with ``json_lines=True`` the whole
    record becomes one JSON object per line instead.
    """

    def __init__(self, json_lines: bool = False) -> None:
        super().__init__()
        self.json_lines = json_lines

    def format(self, record: logging.LogRecord) -> str:
        """Render one record in the configured structured style."""
        fields: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in vars(record).items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                fields[key] = value
        if record.exc_info:
            fields["exc"] = self.formatException(record.exc_info)
        if self.json_lines:
            return json.dumps(fields, default=str)
        return " ".join(f"{key}={_quote(value)}"
                        for key, value in fields.items())


def _quote(value: Any) -> str:
    text = str(value)
    if any(ch.isspace() for ch in text) or text == "":
        return json.dumps(text, default=str)
    return text


def setup_logging(level: str | int = "info", *,
                  json_lines: bool = False,
                  stream: TextIO | None = None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy; returns its root.

    Idempotent: calling again replaces the previously installed handler
    (so tests and REPL sessions can re-tune freely).  ``level`` accepts
    the CLI spellings ``debug``/``info``/``warning``/``error`` or a
    numeric :mod:`logging` level.
    """
    if isinstance(level, str):
        try:
            level = _LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; "
                f"expected one of {sorted(_LEVELS)}") from None
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_structured", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(StructuredFormatter(json_lines=json_lines))
    handler._repro_structured = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str = "") -> logging.Logger:
    """A child of the ``repro`` logger (``get_logger("engine")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class log_duration:
    """Context manager logging the elapsed time of a block at DEBUG.

    >>> import io, logging
    >>> logger = setup_logging("debug", stream=io.StringIO())
    >>> with log_duration(logger, "rebuild", docs=3):
    ...     pass
    """

    def __init__(self, logger: logging.Logger, operation: str,
                 **fields: Any) -> None:
        self.logger = logger
        self.operation = operation
        self.fields = fields
        self._start = 0.0

    def __enter__(self) -> "log_duration":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        elapsed = time.perf_counter() - self._start
        self.logger.debug(
            self.operation,
            extra={"seconds": round(elapsed, 6),
                   "outcome": "error" if exc_type else "ok",
                   **self.fields},
        )
