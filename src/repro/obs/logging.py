"""Structured logging setup for the search stack.

One ``repro`` logger hierarchy, one formatter that renders records as
stable ``key=value`` pairs (or JSON lines with ``json_lines=True``), and
an idempotent :func:`setup_logging` that the CLI's ``--log-level`` flag
drives.  Library modules obtain children via :func:`get_logger` and log
normally; until ``setup_logging`` runs, records propagate to whatever
the host application configured (or nowhere), so importing the library
never spams stderr.

Correlation: :func:`log_context` binds fields (``request_id``,
``trace_id``) to the current :mod:`contextvars` context; the formatter
merges them into every record emitted inside the ``with`` block, so an
engine-level ``query done`` line carries the HTTP request's ids without
the engine knowing about HTTP.
"""

from __future__ import annotations

import contextvars
import json
import logging
import sys
import time
from contextlib import contextmanager
from types import TracebackType
from typing import Any, Final, Iterator, TextIO

ROOT_LOGGER_NAME = "repro"

_LEVELS: Final[dict[str, int]] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_STANDARD_ATTRS = frozenset(vars(
    logging.LogRecord("", 0, "", 0, "", (), None)
)) | {"message", "asctime", "taskName"}

_LOG_CONTEXT: "contextvars.ContextVar[dict[str, Any] | None]" = \
    contextvars.ContextVar("repro_log_context", default=None)


@contextmanager
def log_context(**fields: Any) -> Iterator[None]:
    """Bind correlation fields to every record logged in this context.

    Nested bindings merge (inner wins on key collisions) and unwind on
    exit.  The binding travels with :mod:`contextvars`, so it follows
    the request across ``await`` points and copied executor contexts —
    the same propagation rule as the active trace span.

    >>> import io
    >>> stream = io.StringIO()
    >>> logger = setup_logging("info", stream=stream)
    >>> with log_context(request_id="r1"):
    ...     logger.info("hello")
    >>> "request_id=r1" in stream.getvalue()
    True
    """
    current = _LOG_CONTEXT.get() or {}
    token = _LOG_CONTEXT.set({**current, **fields})
    try:
        yield
    finally:
        _LOG_CONTEXT.reset(token)


def current_log_context() -> dict[str, Any]:
    """The correlation fields bound to the current context (a copy)."""
    return dict(_LOG_CONTEXT.get() or {})


class StructuredFormatter(logging.Formatter):
    """Renders records as ``ts=... level=... logger=... msg=... k=v``.

    Any ``extra={...}`` fields passed at the call site are appended as
    additional ``key=value`` pairs; with ``json_lines=True`` the whole
    record becomes one JSON object per line instead.
    """

    def __init__(self, json_lines: bool = False) -> None:
        super().__init__()
        self.json_lines = json_lines

    def format(self, record: logging.LogRecord) -> str:
        """Render one record in the configured structured style."""
        fields: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        bound = _LOG_CONTEXT.get()
        if bound:
            fields.update(bound)
        for key, value in vars(record).items():
            if key not in _STANDARD_ATTRS and not key.startswith("_"):
                fields[key] = value
        if record.exc_info:
            fields["exc"] = self.formatException(record.exc_info)
        if self.json_lines:
            return json.dumps(fields, default=str)
        return " ".join(f"{key}={_quote(value)}"
                        for key, value in fields.items())


def _quote(value: Any) -> str:
    text = str(value)
    if text == "" or '"' in text or "\\" in text \
            or any(ch.isspace() or not ch.isprintable() for ch in text):
        return json.dumps(text, default=str)
    return text


def setup_logging(level: str | int = "info", *,
                  json_lines: bool = False,
                  stream: TextIO | None = None) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy; returns its root.

    Idempotent: calling again replaces the previously installed handler
    (so tests and REPL sessions can re-tune freely).  ``level`` accepts
    the CLI spellings ``debug``/``info``/``warning``/``error`` or a
    numeric :mod:`logging` level.
    """
    if isinstance(level, str):
        try:
            level = _LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; "
                f"expected one of {sorted(_LEVELS)}") from None
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_structured", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(StructuredFormatter(json_lines=json_lines))
    handler._repro_structured = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str = "") -> logging.Logger:
    """A child of the ``repro`` logger (``get_logger("engine")``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class log_duration:
    """Context manager logging the elapsed time of a block at DEBUG.

    >>> import io, logging
    >>> logger = setup_logging("debug", stream=io.StringIO())
    >>> with log_duration(logger, "rebuild", docs=3):
    ...     pass
    """

    def __init__(self, logger: logging.Logger, operation: str,
                 **fields: Any) -> None:
        self.logger = logger
        self.operation = operation
        self.fields = fields
        self._start = 0.0

    def __enter__(self) -> "log_duration":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        elapsed = time.perf_counter() - self._start
        self.logger.debug(
            self.operation,
            extra={"seconds": round(elapsed, 6),
                   "outcome": "error" if exc_type else "ok",
                   **self.fields},
        )
