"""Flight recorder: keep the span trees of recent slow/error requests.

Always-on tracing answers "where does time go on average"; the flight
recorder answers "why was *that* request slow" after the fact.  It keeps
two bounded rings:

* ``recent`` — lightweight metadata for the last N requests regardless
  of outcome (the ``/debug/requests`` feed);
* ``captured`` — full records *including the span tree* for requests
  that tripped a trigger: latency at or above ``slow_threshold_seconds``
  or an HTTP status in the 5xx range (the ``/debug/traces`` feed).

Span trees are pulled lazily from the tracer only when a trigger fires
(via :meth:`repro.obs.tracing.Tracer.take_trace`), so the common fast
request costs one deque append.  :func:`render_trace` pretty-prints a
captured record as an indented tree with per-span *self time* (duration
minus direct children) and a per-layer rollup — the ``repro debug`` CLI
output.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class RequestRecord:
    """One observed HTTP request, with its span tree when captured."""

    request_id: str
    method: str
    path: str
    status: int
    seconds: float
    trace_id: str | None = None
    sampled: bool = False
    cached: bool | None = None
    wall_time: float = 0.0
    reasons: tuple[str, ...] = ()
    spans: list[dict[str, Any]] = field(default_factory=list)
    cost_profile: dict[str, Any] | None = None
    """The query's EXPLAIN ANALYZE dict when the request opted in
    (``analyze=true``), so captured slow requests carry their own work
    attribution next to the span tree."""

    def to_dict(self, *, include_spans: bool = True) -> dict[str, Any]:
        """JSON-ready view; ``include_spans=False`` for list endpoints."""
        row: dict[str, Any] = {
            "request_id": self.request_id,
            "method": self.method,
            "path": self.path,
            "status": self.status,
            "seconds": self.seconds,
            "trace_id": self.trace_id,
            "sampled": self.sampled,
            "cached": self.cached,
            "wall_time": self.wall_time,
            "reasons": list(self.reasons),
        }
        if self.cost_profile is not None:
            row["cost_profile"] = self.cost_profile
        if include_spans:
            row["spans"] = self.spans
        else:
            row["span_count"] = len(self.spans)
        return row


class FlightRecorder:
    """Bounded ring buffer of recent and captured request records.

    Parameters
    ----------
    capacity:
        Captured records (with span trees) retained; 0 disables capture
        while keeping the ``recent`` feed.
    recent:
        Metadata-only records retained for the ``/debug/requests`` feed.
    slow_threshold_seconds:
        Requests at or above this latency are captured; 0 captures every
        request (useful in benchmarks and tests).
    clock:
        Wall-clock source for record timestamps (injectable for tests).
    """

    def __init__(self, *, capacity: int = 64, recent: int = 256,
                 slow_threshold_seconds: float = 1.0,
                 clock: Callable[[], float] = time.time) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if recent < 1:
            raise ValueError(f"recent must be >= 1, got {recent}")
        if slow_threshold_seconds < 0:
            raise ValueError(
                f"slow_threshold_seconds must be >= 0, got "
                f"{slow_threshold_seconds}")
        self.capacity = capacity
        self.slow_threshold_seconds = slow_threshold_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._recent: deque[RequestRecord] = deque(maxlen=recent)  # guarded by: _lock
        self._captured: deque[RequestRecord] = deque(maxlen=capacity or 1)  # guarded by: _lock
        self.requests_seen = 0  # guarded by: _lock
        self.requests_recorded = 0  # guarded by: _lock

    def observe(self, record: RequestRecord,
                spans: Callable[[], list[dict[str, Any]]] | None = None,
                ) -> RequestRecord | None:
        """Feed one finished request; returns the record when captured.

        ``spans`` is called (once, outside the recorder lock) only when a
        trigger fires, so untriggered requests never materialise their
        span tree.
        """
        record.wall_time = self._clock()
        reasons: list[str] = []
        if record.status >= 500:
            reasons.append("error")
        if record.seconds >= self.slow_threshold_seconds:
            reasons.append("slow")
        captured = bool(reasons) and self.capacity > 0
        if captured:
            record.reasons = tuple(reasons)
            if spans is not None:
                record.spans = spans()
        with self._lock:
            self.requests_seen += 1
            self._recent.append(record)
            if captured:
                self._captured.append(record)
                self.requests_recorded += 1
        return record if captured else None

    def get(self, key: str) -> RequestRecord | None:
        """Look up a captured record by ``request_id`` or ``trace_id``."""
        with self._lock:
            for record in reversed(self._captured):
                if record.request_id == key or record.trace_id == key:
                    return record
        return None

    def captured(self) -> list[RequestRecord]:
        """Captured records, oldest first."""
        with self._lock:
            return list(self._captured)

    def recent(self) -> list[RequestRecord]:
        """The metadata ring (all outcomes), oldest first."""
        with self._lock:
            return list(self._recent)

    def snapshot(self) -> dict[str, Any]:
        """Counters and sizes for ``/debug/vars``."""
        with self._lock:
            return {
                "requests_seen": self.requests_seen,
                "requests_recorded": self.requests_recorded,
                "captured": len(self._captured),
                "recent": len(self._recent),
                "capacity": self.capacity,
                "slow_threshold_seconds": self.slow_threshold_seconds,
            }


def _layer(name: str) -> str:
    """The layer prefix of a span name (``knds.level`` → ``knds``)."""
    return name.split(".", 1)[0]


def render_trace(record: RequestRecord) -> str:
    """Pretty-print a captured request: span tree + per-layer self time.

    *Self time* is a span's duration minus the summed durations of its
    direct children — the time actually spent in that layer rather than
    delegated downward.  The per-layer rollup at the bottom aggregates
    self time by span-name prefix, which is exactly the paper's
    "where does the time go" question (DRC probes vs. kNDS rounds vs.
    serving overhead) asked of one concrete request.
    """
    lines = [
        f"request {record.request_id}  {record.method} {record.path}  "
        f"status={record.status}  {record.seconds * 1000:.2f} ms",
        f"trace {record.trace_id or '-'}  sampled={record.sampled}  "
        f"cached={record.cached}  reasons={','.join(record.reasons) or '-'}",
    ]
    if not record.spans:
        lines.append("(no spans captured — trace not sampled?)")
        return "\n".join(lines)
    by_id = {span["span_id"]: span for span in record.spans}
    children: dict[Any, list[dict[str, Any]]] = {}
    roots: list[dict[str, Any]] = []
    for span in record.spans:
        parent = span.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    self_times: dict[str, float] = {}

    def self_time(span: dict[str, Any]) -> float:
        child_total = sum(child["duration"]
                          for child in children.get(span["span_id"], []))
        return max(0.0, span["duration"] - child_total)

    def walk(span: dict[str, Any], depth: int) -> None:
        own = self_time(span)
        layer = _layer(span["name"])
        self_times[layer] = self_times.get(layer, 0.0) + own
        attrs = span.get("attributes") or {}
        detail = " ".join(f"{key}={value}" for key, value in attrs.items())
        lines.append(
            f"{'  ' * depth}{span['name']:<{max(1, 40 - 2 * depth)}} "
            f"{span['duration'] * 1000:9.3f} ms  "
            f"self {own * 1000:8.3f} ms"
            + (f"  [{detail}]" if detail else ""))
        for child in sorted(children.get(span["span_id"], []),
                            key=lambda item: item["start"]):
            walk(child, depth + 1)

    lines.append("")
    for root in sorted(roots, key=lambda item: item["start"]):
        walk(root, 0)
    lines.append("")
    lines.append("per-layer self time:")
    total = sum(self_times.values()) or 1.0
    for layer, seconds in sorted(self_times.items(),
                                 key=lambda item: -item[1]):
        lines.append(f"  {layer:<12} {seconds * 1000:9.3f} ms  "
                     f"{100.0 * seconds / total:5.1f}%")
    return "\n".join(lines)
