"""SLO tracking for the serve path: latency, availability, burn rate.

A :class:`SLOTracker` watches every finished HTTP request and maintains,
per endpoint, a latency histogram plus availability counters, and — over
short and long sliding windows — the *burn rate*: the ratio between the
observed bad-request fraction and the error budget implied by the
availability target.  A burn rate of 1.0 means the budget is being spent
exactly at the sustainable pace; 10× means the budget for the period
will be gone in a tenth of it (the classic fast-burn page condition).

Definitions (kept deliberately simple and inspectable):

* a request is **unavailable** when its status is 5xx;
* a request **misses latency** when it succeeds but takes longer than
  ``latency_objective_seconds``;
* a request is **bad** (burns budget) when either holds.

Windows are tracked with coarse time buckets (``bucket_seconds``) in a
bounded deque, so memory is constant and old traffic ages out without
timers.  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, Histogram

_WINDOWS = (300.0, 3600.0)  # burn-rate windows: 5 minutes, 1 hour


@dataclass
class _EndpointState:
    """Per-endpoint aggregates (guarded by the tracker lock)."""

    total: int = 0
    unavailable: int = 0
    latency_misses: int = 0
    latency: Histogram = field(default_factory=lambda: Histogram(
        "slo.latency_seconds", "Per-endpoint request latency",
        buckets=DEFAULT_LATENCY_BUCKETS))


class SLOTracker:
    """Per-endpoint SLO accounting with windowed burn rates.

    Parameters
    ----------
    availability_target:
        Fraction of requests that must not be *bad* (e.g. ``0.999``);
        the error budget is ``1 - availability_target``.
    latency_objective_seconds:
        Latency bound counted against the budget for successful requests.
    bucket_seconds:
        Granularity of the sliding-window accounting.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, *, availability_target: float = 0.999,
                 latency_objective_seconds: float = 0.5,
                 bucket_seconds: float = 15.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not 0.0 < availability_target < 1.0:
            raise ValueError(
                f"availability_target must be in (0, 1), got "
                f"{availability_target}")
        if latency_objective_seconds <= 0:
            raise ValueError(
                f"latency_objective_seconds must be > 0, got "
                f"{latency_objective_seconds}")
        if bucket_seconds <= 0:
            raise ValueError(
                f"bucket_seconds must be > 0, got {bucket_seconds}")
        self.availability_target = availability_target
        self.latency_objective_seconds = latency_objective_seconds
        self.bucket_seconds = bucket_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._endpoints: dict[str, _EndpointState] = {}  # guarded by: _lock
        # (bucket_index, total, bad) triples, oldest first.
        keep = int(max(_WINDOWS) / bucket_seconds) + 2
        self._buckets: deque[list[float]] = deque(maxlen=keep)  # guarded by: _lock

    def observe(self, path: str, status: int, seconds: float) -> None:
        """Account one finished request."""
        unavailable = status >= 500
        latency_miss = not unavailable \
            and seconds > self.latency_objective_seconds
        bad = unavailable or latency_miss
        bucket = int(self._clock() / self.bucket_seconds)
        with self._lock:
            state = self._endpoints.get(path)
            if state is None:
                state = self._endpoints[path] = _EndpointState()
            state.total += 1
            state.unavailable += int(unavailable)
            state.latency_misses += int(latency_miss)
            state.latency.observe(seconds)
            if self._buckets and self._buckets[-1][0] == bucket:
                self._buckets[-1][1] += 1
                self._buckets[-1][2] += int(bad)
            else:
                self._buckets.append([bucket, 1, int(bad)])

    def _window_counts(self, window_seconds: float) -> tuple[int, int]:  # holds: _lock
        """(total, bad) over the trailing window (lock held)."""
        now_bucket = int(self._clock() / self.bucket_seconds)
        span = int(window_seconds / self.bucket_seconds)
        total = bad = 0
        for bucket, count, bad_count in self._buckets:
            if bucket > now_bucket - span:
                total += int(count)
                bad += int(bad_count)
        return total, bad

    def burn_rate(self, window_seconds: float) -> float | None:
        """Error-budget burn rate over the window; ``None`` without traffic."""
        with self._lock:
            total, bad = self._window_counts(window_seconds)
        if total == 0:
            return None
        budget = 1.0 - self.availability_target
        return (bad / total) / budget

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view: objectives, burn rates, per-endpoint stats."""
        with self._lock:
            windows = {}
            budget = 1.0 - self.availability_target
            for window in _WINDOWS:
                total, bad = self._window_counts(window)
                windows[f"{int(window)}s"] = {
                    "requests": total,
                    "bad": bad,
                    "burn_rate": (bad / total) / budget if total else None,
                }
            endpoints = {}
            for path, state in sorted(self._endpoints.items()):
                good = state.total - state.unavailable
                endpoints[path] = {
                    "requests": state.total,
                    "unavailable": state.unavailable,
                    "latency_misses": state.latency_misses,
                    "availability": (good / state.total
                                     if state.total else None),
                    "latency_p50_seconds": state.latency.quantile(0.5),
                    "latency_p99_seconds": state.latency.quantile(0.99),
                }
        return {
            "availability_target": self.availability_target,
            "latency_objective_seconds": self.latency_objective_seconds,
            "windows": windows,
            "endpoints": endpoints,
        }
