"""The paper's running example (Figure 3) and other tiny fixtures.

The Figure 3 ontology is reconstructed from the paper's own artifacts: the
Dewey address lists of Table 1, the node identities revealed in Example 2
(``1.1.1`` is G, ``1.1.1.2``/``3.1.1`` is J, ``3.1.2`` is H), the neighbor
sets expanded in Table 2, and the worked distances (``D(G, F) = 5`` via the
root A, ``Ddq({F,R,T,V}, {I,L,U}) = 4 + 2 + 1 = 7``).  The test suite
asserts every one of those facts against this fixture, so the fixture and
the algorithms validate each other.

Edge insertion order below is significant: it determines Dewey components,
and it was chosen so the produced addresses match Table 1 exactly (e.g. J is
F's *first* child so that J = 3.1.1 and H = 3.1.2).
"""

from __future__ import annotations

from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.ontology.builder import OntologyBuilder
from repro.ontology.graph import Ontology

FIGURE3_EDGES: tuple[tuple[str, str], ...] = (
    ("A", "B"), ("A", "C"), ("A", "D"),
    ("B", "E"),
    ("D", "F"),
    ("E", "G"),
    ("G", "I"), ("G", "J"),
    ("F", "J"), ("F", "H"),
    ("H", "O"), ("H", "L"),
    ("I", "M"), ("I", "N"),
    ("J", "K"), ("J", "P"),
    ("K", "R"),
    ("P", "Q"),
    ("Q", "V"),
    ("O", "S"),
    ("R", "U"),
    ("S", "T"),
)

FIGURE3_LABELS: dict[str, str] = {
    "A": "clinical finding",
    "B": "cardiac finding",
    "D": "disorder of body system",
    "F": "heart disease",
    "G": "heart valve finding",
    "J": "heart valve disorder",
}


def figure3_ontology() -> Ontology:
    """The 22-concept DAG of the paper's Figure 3.

    Concepts are named ``A`` through ``V``; ``J`` has two parents (G and F),
    which is what makes the structure a DAG rather than a tree and gives
    concepts like R two Dewey addresses (Table 1).
    """
    builder = OntologyBuilder("figure3")
    for concept_id in "ABCDEFGHIJKLMNOPQRSTUV":
        builder.add_concept(concept_id, FIGURE3_LABELS.get(concept_id))
    for parent, child in FIGURE3_EDGES:
        builder.add_edge(parent, child)
    return builder.build()


EXAMPLE_DOCUMENT = ("F", "R", "T", "V")
"""The document ``d`` used in Examples 1-3 and Figures 4-5."""

EXAMPLE_QUERY = ("I", "L", "U")
"""The query ``q`` used in Examples 1-3 and Figure 5."""


def example4_collection() -> DocumentCollection:
    """A six-document collection reproducing the Table 2 kNDS trace.

    The paper never prints the collection's concept sets, but they are
    pinned down by the trace for the RDS query ``q = {F, I}``, ``k = 2``,
    ``εθ = 1``: the lower bounds after each iteration, the final distances
    (``Ddq(d1) = 4``, ``Ddq(d2) = Ddq(d3) = 2``), which documents enter
    ``Ld`` at which iteration, and the END-row contents.  The sets below
    reproduce the published trace exactly (see
    ``tests/test_paper_examples.py``).
    """
    return DocumentCollection(
        [
            Document("d1", ("F", "R")),
            Document("d2", ("I", "O")),
            Document("d3", ("F", "J")),
            Document("d4", ("D",)),
            Document("d5", ("C",)),
            Document("d6", ("G", "H")),
        ],
        name="example4",
    )


def example_collection_with_example_doc() -> DocumentCollection:
    """Example 4's collection plus the Examples 1-3 document as ``d0``."""
    collection = example4_collection()
    collection.add(Document("d0", EXAMPLE_DOCUMENT))
    return collection
