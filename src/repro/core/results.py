"""Result and instrumentation types shared by all search algorithms.

Every algorithm — kNDS, the full-scan baseline, the Threshold Algorithm —
returns a :class:`RankedResults`, and every run is instrumented with a
:class:`QueryStats` that splits wall-clock time the way the paper's plots
do: distance-calculation time (DRC), ontology-traversal time, and index
I/O time.

The recording itself happens in the metrics layer: the algorithms fill a
per-query :class:`repro.obs.metrics.QueryTelemetry` scope, and
:meth:`QueryStats.from_metrics` materializes the result-facing view from
it, so the paper-figure benchmarks keep reading the same fields while the
observability subsystem aggregates the very same numbers process-wide.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.exceptions import InvariantError
from repro.obs.metrics import QUERY_TELEMETRY_FIELDS, QueryTelemetry
from repro.obs.profiling import QueryCostProfile
from repro.types import DocId


@dataclass(frozen=True)
class ResultItem:
    """One ranked document: id and its distance from the query."""

    doc_id: DocId
    distance: float

    def __iter__(self) -> Iterator[DocId | float]:
        # Allow ``doc, dist = item`` unpacking in examples and tests.
        yield self.doc_id
        yield self.distance


@dataclass
class QueryStats:
    """Instrumentation for one query evaluation.

    The three timing buckets mirror the stacked components in the paper's
    Figures 7-9: ``distance_seconds`` (DRC probes), ``traversal_seconds``
    (ontology breadth-first expansion) and ``io_seconds`` (inverted/forward
    index access).  ``total_seconds`` is wall clock for the whole query and
    also covers bookkeeping outside the three buckets.
    """

    total_seconds: float = 0.0
    distance_seconds: float = 0.0
    traversal_seconds: float = 0.0
    io_seconds: float = 0.0

    drc_calls: int = 0
    """Number of exact distance computations performed."""
    covered_shortcuts: int = 0
    """Documents finalized from complete coverage without a DRC probe."""
    docs_examined: int = 0
    """Documents whose exact distance was determined (probe or shortcut)."""
    docs_touched: int = 0
    """Distinct documents that ever entered the candidate list."""
    docs_pruned: int = 0
    """Candidates dropped because their lower bound exceeded ``Dk+``."""
    bfs_levels: int = 0
    """Breadth-first iterations executed (the paper's ``l``)."""
    nodes_visited: int = 0
    """Ontology concept visits during traversal (first visits per origin)."""
    forced_rounds: int = 0
    """Analysis rounds forced by queue-limit pressure (Section 6.1)."""
    arena_calls: int = 0
    """Exact distances computed by the packed arena kernels.

    With the arena enabled (:class:`repro.core.knds.KNDSConfig`
    ``use_arena``) candidate settles go here instead of ``drc_calls``;
    the sum of the two is the total exact-distance work either way.
    """

    FIELDS = QUERY_TELEMETRY_FIELDS
    """The instrumented field names, shared with the metrics layer."""

    @classmethod
    def from_metrics(cls, telemetry: QueryTelemetry) -> "QueryStats":
        """Build a ``QueryStats`` from a per-query metrics scope.

        ``telemetry`` is duck-typed: any object carrying the
        :data:`~repro.obs.metrics.QUERY_TELEMETRY_FIELDS` attributes
        works, canonically :class:`repro.obs.metrics.QueryTelemetry`.
        """
        return cls(**{name: getattr(telemetry, name)
                      for name in QUERY_TELEMETRY_FIELDS})

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another run's counters into this one (for averages)."""
        self.total_seconds += other.total_seconds
        self.distance_seconds += other.distance_seconds
        self.traversal_seconds += other.traversal_seconds
        self.io_seconds += other.io_seconds
        self.drc_calls += other.drc_calls
        self.covered_shortcuts += other.covered_shortcuts
        self.docs_examined += other.docs_examined
        self.docs_touched += other.docs_touched
        self.docs_pruned += other.docs_pruned
        self.bfs_levels += other.bfs_levels
        self.nodes_visited += other.nodes_visited
        self.forced_rounds += other.forced_rounds
        self.arena_calls += other.arena_calls

    def scaled(self, divisor: float) -> "QueryStats":
        """A copy with every field divided by ``divisor`` (averaging)."""
        return QueryStats(
            total_seconds=self.total_seconds / divisor,
            distance_seconds=self.distance_seconds / divisor,
            traversal_seconds=self.traversal_seconds / divisor,
            io_seconds=self.io_seconds / divisor,
            drc_calls=round(self.drc_calls / divisor),
            covered_shortcuts=round(self.covered_shortcuts / divisor),
            docs_examined=round(self.docs_examined / divisor),
            docs_touched=round(self.docs_touched / divisor),
            docs_pruned=round(self.docs_pruned / divisor),
            bfs_levels=round(self.bfs_levels / divisor),
            nodes_visited=round(self.nodes_visited / divisor),
            forced_rounds=round(self.forced_rounds / divisor),
            arena_calls=round(self.arena_calls / divisor),
        )


@dataclass
class RankedResults:
    """The outcome of one top-k query."""

    results: list[ResultItem]
    stats: QueryStats = field(default_factory=QueryStats)
    algorithm: str = ""
    query_kind: str = ""
    k: int = 0
    cost_profile: QueryCostProfile | None = None
    """EXPLAIN ANALYZE attribution, only populated for ``analyze=True``
    queries on algorithms that support it (currently kNDS)."""

    def doc_ids(self) -> list[DocId]:
        """Ranked document ids."""
        return [item.doc_id for item in self.results]

    def distances(self) -> list[float]:
        """Ranked distances."""
        return [item.distance for item in self.results]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ResultItem]:
        return iter(self.results)


def merge_ranked(parts: Sequence[RankedResults], k: int) -> RankedResults:
    """Merge per-partition top-k lists into the global top-k.

    The scatter-gather reduce step of :mod:`repro.shard`.  Correctness
    leans on kNDS's own ``D− ≥ Dk+`` bound: each shard stops only once
    no unanalyzed document in *its* partition can beat its local k-th
    distance, and the local ``Dk+`` is at or above the global one —
    so each local top-k is a superset of its partition's contribution
    to the global top-k, and
    concatenating the per-shard lists loses nothing.  Membership and
    order use the full ``(distance, doc_id)`` key — the same canonical
    tie-break the engine's ``stable_ties`` default applies — which makes
    the merged ranking bit-identical to running the single engine over
    the union of the partitions.

    Work telemetry (:class:`QueryStats`) is summed across shards;
    ``algorithm``/``query_kind`` are taken from the parts (which agree
    by construction).  Empty parts (an empty shard, or one holding
    fewer than ``k`` documents) contribute what they have.
    """
    if not parts:
        raise InvariantError("merge_ranked needs at least one partition")
    merged: list[ResultItem] = []
    stats = QueryStats()
    for part in parts:
        merged.extend(part.results)
        stats.merge(part.stats)
    merged.sort(key=lambda item: (item.distance, item.doc_id))
    return RankedResults(
        results=merged[:k],
        stats=stats,
        algorithm=parts[0].algorithm,
        query_kind=parts[0].query_kind,
        k=k,
    )
