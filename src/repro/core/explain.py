"""Result explanation: why a document ranks where it does.

Concept-based rankings are opaque to end users ("why is this patient
relevant to my trial criteria?"), so this module decomposes the distances
into their Eq. 1 terms and recovers, for each term, an *actual shortest
valid path* through the ontology — the concrete chain of is-a hops a
clinician can inspect:

    I -> G (up) -> J (down) : distance 2

Used by ``SearchEngine``-level callers as::

    explanation = explain_rds(ontology, document.concepts, query)
    print(render_explanation(ontology, explanation))
"""

from __future__ import annotations

from collections.abc import Collection, Sequence
from dataclasses import dataclass

from repro.exceptions import (EmptyDocumentError, InvariantError,
                              UnknownConceptError)
from repro.obs.profiling import QueryCostProfile
from repro.ontology.graph import Ontology
from repro.types import ConceptId


def _ancestor_tree(ontology: Ontology, origin: ConceptId
                   ) -> dict[ConceptId, ConceptId | None]:
    """BFS over parent edges recording each ancestor's predecessor."""
    if origin not in ontology:
        raise UnknownConceptError(origin)
    predecessor: dict[ConceptId, ConceptId | None] = {origin: None}
    frontier = [origin]
    while frontier:
        next_frontier: list[ConceptId] = []
        for node in frontier:
            for parent in ontology.parents(node):
                if parent not in predecessor:
                    predecessor[parent] = node
                    next_frontier.append(parent)
        frontier = next_frontier
    return predecessor


def _chain(predecessor: dict[ConceptId, ConceptId | None],
           ancestor: ConceptId) -> list[ConceptId]:
    """The up-path origin -> ... -> ancestor, origin first."""
    path = [ancestor]
    while predecessor[path[-1]] is not None:
        path.append(predecessor[path[-1]])  # type: ignore[arg-type]
    path.reverse()
    return path


def shortest_valid_path(ontology: Ontology, first: ConceptId,
                        second: ConceptId) -> list[ConceptId]:
    """One shortest valid path from ``first`` to ``second``.

    The returned list starts at ``first``, climbs to a best common
    ancestor and descends to ``second``; its length minus one is the
    valid-path distance.  Ties between common ancestors break toward the
    lexicographically smallest, so output is deterministic.
    """
    up_first = _ancestor_tree(ontology, first)
    up_second = _ancestor_tree(ontology, second)
    depth_first = {node: len(_chain(up_first, node)) - 1
                   for node in up_first}
    depth_second = {node: len(_chain(up_second, node)) - 1
                    for node in up_second}
    best_ancestor = min(
        (node for node in depth_first if node in depth_second),
        key=lambda node: (depth_first[node] + depth_second[node], node),
    )
    climb = _chain(up_first, best_ancestor)
    descend = _chain(up_second, best_ancestor)
    descend.reverse()
    return climb + descend[1:]


@dataclass(frozen=True)
class TermExplanation:
    """One Eq. 1 term: a query concept and its nearest document concept."""

    query_concept: ConceptId
    nearest_concept: ConceptId
    distance: int
    path: tuple[ConceptId, ...]
    """An actual shortest valid path, query concept first."""


@dataclass(frozen=True)
class Explanation:
    """A full decomposition of ``Ddq`` (or one direction of ``Ddd``)."""

    terms: tuple[TermExplanation, ...]

    @property
    def total(self) -> int:
        """The summed distance — equals ``Ddq(d, q)``."""
        return sum(term.distance for term in self.terms)


def explain_rds(ontology: Ontology, doc_concepts: Collection[ConceptId],
                query_concepts: Sequence[ConceptId]) -> Explanation:
    """Decompose ``Ddq(d, q)`` into per-query-concept nearest terms."""
    if not doc_concepts:
        raise EmptyDocumentError("<explain>")
    terms = []
    for query_concept in dict.fromkeys(query_concepts):
        best_concept = None
        best_path: list[ConceptId] | None = None
        for doc_concept in sorted(doc_concepts):
            path = shortest_valid_path(ontology, query_concept, doc_concept)
            if best_path is None or len(path) < len(best_path):
                best_path = path
                best_concept = doc_concept
        if best_path is None or best_concept is None:
            raise InvariantError(
                "no valid path found; connected DAGs always have one "
                "through the root")
        terms.append(TermExplanation(
            query_concept=query_concept,
            nearest_concept=best_concept,
            distance=len(best_path) - 1,
            path=tuple(best_path),
        ))
    return Explanation(tuple(terms))


def explain_sds(ontology: Ontology, doc_concepts: Collection[ConceptId],
                query_concepts: Collection[ConceptId]
                ) -> tuple[Explanation, Explanation]:
    """Both directions of ``Ddd``: (query->doc terms, doc->query terms).

    ``Ddd`` equals ``first.total / |query| + second.total / |doc|``.
    """
    forward = explain_rds(ontology, doc_concepts, sorted(query_concepts))
    backward = explain_rds(ontology, query_concepts, sorted(doc_concepts))
    return forward, backward


def render_explanation(ontology: Ontology,
                       explanation: Explanation) -> str:
    """Human-readable rendering with concept labels."""
    lines = []
    for term in explanation.terms:
        hops = " -> ".join(
            f"{concept} ({ontology.label(concept)})"
            if ontology.label(concept) != concept else concept
            for concept in term.path
        )
        lines.append(
            f"{term.query_concept}: nearest is {term.nearest_concept} "
            f"at distance {term.distance}  [{hops}]"
        )
    lines.append(f"total distance: {explanation.total}")
    return "\n".join(lines)


def render_cost_profile(profile: QueryCostProfile) -> str:
    """Human-readable EXPLAIN ANALYZE block for one query.

    Rendered by ``repro explain --analyze`` next to the distance
    decomposition: the work counters, the candidate funnel, and the
    per-round ``D−``/``Dk+`` bound trajectory that shows *where* the
    branch-and-bound converged.
    """
    lines = [
        f"cost profile ({profile.algorithm} {profile.query_kind}, "
        f"k={profile.k}, path={profile.path})",
        f"  probes: {profile.probes} postings reads, "
        f"{profile.exact_distances} exact distances "
        f"({profile.arena_calls} arena / {profile.drc_calls} drc), "
        f"{profile.covered_shortcuts} covered shortcuts",
        f"  arena: {profile.pair_lookups} pair lookups, "
        f"{profile.pair_kernels} kernels, "
        f"cache {profile.cache_hits} hit / {profile.cache_misses} miss",
        f"  candidates: {profile.candidates_created} created -> "
        f"{profile.candidates_pruned} pruned, "
        f"{profile.candidates_settled} settled",
        f"  terminated: {profile.termination_reason} at level "
        f"{profile.termination_level} after {profile.rounds} rounds "
        f"({profile.forced_rounds} forced)",
        "  bounds (level: D- vs Dk+):",
    ]
    for sample in profile.bounds:
        kth = "-" if sample.kth is None else f"{sample.kth:g}"
        gap = "" if sample.gap is None else f"  (gap {sample.gap:g})"
        lines.append(
            f"    L{sample.level}: D-={sample.lower:g}  Dk+={kth}{gap}")
    lines.append(f"  wall time: {profile.seconds * 1e3:.3f} ms")
    return "\n".join(lines)
