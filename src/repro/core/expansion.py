"""Ontology-based query expansion (Section 2's related technique).

The paper's introduction motivates concept search with query expansion:
documents containing "heart valve finding" are relevant to a query for
"aortic valve stenosis" even without the literal term.  kNDS *implicitly*
expands — its breadth-first traversal reaches nearby concepts — but
explicit expansion remains useful for interoperating with term-based
engines and for the footnote-3 scenario: merging the scores of several
expanded sub-queries, each normalized by its size.

Two pieces:

* :class:`QueryExpander` — expand a concept set with its valid-path
  neighborhood, optionally weighting expansions by distance decay;
* :func:`merged_rds` — evaluate several sub-queries and rank documents by
  ``Σ_i Ddq(d, q_i) / |q_i|`` (the paper's footnote 3), either exactly
  (full corpus scan) or over a kNDS candidate pool.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.drc import DRC
from repro.core.knds import KNDSConfig, KNDSearch
from repro.core.results import RankedResults, ResultItem
from repro.corpus.collection import DocumentCollection
from repro.exceptions import QueryError
from repro.ontology.graph import Ontology
from repro.ontology.traversal import ValidPathBFS
from repro.types import ConceptId


class QueryExpander:
    """Expand query concepts with their ontological neighborhood.

    Parameters
    ----------
    ontology:
        The concept DAG.
    radius:
        Valid-path distance up to which neighbors are included.
    decay:
        Weight multiplier per distance level; an expansion at distance
        ``l`` gets weight ``decay ** l`` (the original concepts keep
        weight 1).  Useful together with
        :func:`repro.ontology.weighting.weighted_document_query_distance`.
    """

    def __init__(self, ontology: Ontology, *, radius: int = 1,
                 decay: float = 0.5) -> None:
        if radius < 0:
            raise QueryError("radius must be non-negative")
        if not 0 < decay <= 1:
            raise QueryError("decay must be in (0, 1]")
        self._ontology = ontology
        self.radius = radius
        self.decay = decay

    def expand(self, concepts: Sequence[ConceptId]
               ) -> dict[ConceptId, float]:
        """Expanded concept -> weight map.

        Original concepts always weigh 1; each neighbor weighs
        ``decay ** distance`` for its *minimum* distance from any query
        concept.
        """
        weights: dict[ConceptId, float] = {}
        for origin in dict.fromkeys(concepts):
            for level, nodes in ValidPathBFS(self._ontology, origin):
                if level > self.radius:
                    break
                weight = self.decay ** level
                for node in nodes:
                    if weight > weights.get(node, 0.0):
                        weights[node] = weight
        return weights

    def expanded_concepts(self, concepts: Sequence[ConceptId]
                          ) -> list[ConceptId]:
        """Just the expanded concept list (weights discarded)."""
        return sorted(self.expand(concepts))


def merged_rds(ontology: Ontology, collection: DocumentCollection,
               sub_queries: Sequence[Sequence[ConceptId]], k: int, *,
               exact: bool = True,
               candidate_factor: int = 3,
               drc: DRC | None = None,
               knds: KNDSearch | None = None,
               config: KNDSConfig | None = None) -> RankedResults:
    """Rank documents by the footnote-3 merged score
    ``Σ_i Ddq(d, q_i) / |q_i|``.

    ``exact=True`` scores every document (a full scan — exact by
    construction).  ``exact=False`` pools the union of per-sub-query kNDS
    top-``k·candidate_factor`` results and scores only the pool; much
    faster, and exact whenever the pool covers the true top-k (the usual
    case for overlapping sub-queries — but a document mediocre for every
    sub-query yet best on the merged score can be missed).
    """
    if not sub_queries:
        raise QueryError("need at least one sub-query")
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    normalized = [tuple(dict.fromkeys(query)) for query in sub_queries]
    for query in normalized:
        if not query:
            raise QueryError("sub-queries must be non-empty")
    drc = drc or DRC(ontology)

    if exact:
        candidates = [document.doc_id for document in collection]
    else:
        knds = knds or KNDSearch(ontology, collection, drc=drc)
        pool: dict[str, None] = {}
        for query in normalized:
            partial = knds.rds(query, k * candidate_factor, config)
            for item in partial:
                pool.setdefault(item.doc_id, None)
        candidates = list(pool)

    scored: list[ResultItem] = []
    for doc_id in candidates:
        document = collection.get(doc_id)
        score = sum(
            drc.document_query_distance(document.require_concepts(), query)
            / len(query)
            for query in normalized
        )
        scored.append(ResultItem(doc_id, score))
    scored.sort(key=lambda item: (item.distance, item.doc_id))
    return RankedResults(
        scored[:k],
        algorithm="merged-rds" + ("" if exact else "+pooled"),
        query_kind="rds",
        k=k,
    )
