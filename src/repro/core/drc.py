"""The DRC algorithm (Algorithm 1): O(n log n) document distances.

DRC (D-Radix Construction) computes the document-query distance ``Ddq``
(Eq. 2) and the symmetric document-document distance ``Ddd`` (Eq. 3)
without any precomputation: it builds a D-Radix DAG over all Dewey
addresses of the two concept sets — ``O((|Pq|+|Pd|) log(|Pq|+|Pd|))`` for
the construction phase since the index height is logarithmic in the number
of addresses — and tunes the distance annotations with two linear sweeps.

This replaces the quadratic baseline that evaluates all ``nq × nd``
concept-pair distances (:mod:`repro.baselines.pairwise`), which is the
comparison of the paper's Figure 6.
"""

from __future__ import annotations

import time
from collections.abc import Collection
from typing import TYPE_CHECKING

from repro.core.dradix import DRadixDAG
from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology
from repro.types import ConceptId

if TYPE_CHECKING:
    from repro.core.arena import PackedDeweyArena
    from repro.obs import Observability


class DRC:
    """Query-time distance calculator over one ontology.

    The instance owns (or shares) a :class:`~repro.ontology.dewey.DeweyIndex`
    so that the Dewey addresses of frequently touched concepts are computed
    once and memoized across calls — exactly the reuse pattern of kNDS,
    which probes DRC for many candidate documents against one query.

    When constructed with a :class:`~repro.core.arena.PackedDeweyArena`,
    the two distance entry points consult the arena's kernels first —
    same floats, no per-call D-Radix build — and :meth:`build` remains
    the tuple-path fallback (and the inspectable artifact).  This class
    is the *tuple* rung of the kernel ladder (tuple → packed → numpy,
    docs/PERFORMANCE.md): which arena kernel answers a probe is the
    arena's ``kernel_tier``, invisible here beyond speed.

    Attributes
    ----------
    calls:
        Number of distance computations performed (the paper counts DRC
        probes when tuning the kNDS error threshold).  Arena-served
        calls count too: the paper's metric is exact distances computed,
        not D-Radix DAGs built.
    """

    def __init__(self, ontology: Ontology,
                 dewey: DeweyIndex | None = None, *,
                 arena: "PackedDeweyArena | None" = None,
                 obs: "Observability | None" = None) -> None:
        self.ontology = ontology
        self.dewey = dewey if dewey is not None else DeweyIndex(ontology)
        self.arena = arena
        self.calls = 0
        self._obs = obs

    def instrument(self, obs: "Observability | None") -> None:
        """Attach an :class:`repro.obs.Observability` bundle (or ``None``).

        When set, every probe increments the ``drc.probes`` counter and
        feeds the ``drc.probe_seconds`` duration histogram — the paper's
        "number of distance calculations" trace, bucketed by cost.
        """
        self._obs = obs

    def document_query_distance(self, doc_concepts: Collection[ConceptId],
                                query_concepts: Collection[ConceptId]
                                ) -> float:
        """``Ddq(d, q)`` for an RDS query."""
        if self.arena is not None:
            self.calls += 1
            return self.arena.doc_query_distance(doc_concepts,
                                                 query_concepts)
        dradix = self.build(doc_concepts, query_concepts)
        return dradix.document_query_distance()

    def document_document_distance(self, doc_concepts: Collection[ConceptId],
                                   query_concepts: Collection[ConceptId]
                                   ) -> float:
        """``Ddd(d, dq)`` for an SDS query."""
        if self.arena is not None:
            self.calls += 1
            return self.arena.doc_doc_distance(doc_concepts,
                                               query_concepts)
        dradix = self.build(doc_concepts, query_concepts)
        return dradix.document_document_distance()

    def build(self, doc_concepts: Collection[ConceptId],
              query_concepts: Collection[ConceptId]) -> DRadixDAG:
        """Build and tune the D-Radix (exposed for inspection/tests)."""
        self.calls += 1
        obs = self._obs
        if obs is None:
            return DRadixDAG.build(
                self.ontology, self.dewey, doc_concepts, query_concepts
            )
        start = time.perf_counter()
        dradix = DRadixDAG.build(
            self.ontology, self.dewey, doc_concepts, query_concepts
        )
        obs.record_probe(time.perf_counter() - start)
        return dradix

    def reset_counters(self) -> None:
        """Zero the probe counter (benchmark harness hygiene)."""
        self.calls = 0
