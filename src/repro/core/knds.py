"""kNDS — the k-Nearest Document Search algorithm (Algorithm 2).

kNDS answers both query types with one branch-and-bound strategy built on
query expansion: run a level-synchronized valid-path BFS from every query
concept, collect the documents whose concepts the frontier touches, and
maintain for each collected document a *partial* distance (Eq. 5/7, from
the query concepts already covered) and a *lower-bound* distance (Eq. 6/8,
charging every uncovered term the optimistic ``l + 1``).  An error
estimate ``εd = 1 - partial/lower`` (Eq. 9) gates the expensive exact
distance computation (a DRC probe): only documents whose bound is already
tight get analyzed, everything else waits for more traversal.  The search
terminates when the smallest lower bound among unanalyzed documents — or
the bound ``|q|·(l+1)`` (RDS) / ``2·(l+1)`` (SDS) covering never-touched
documents — reaches the distance of the current k-th best.

All four engineering optimizations from Section 5.3 are implemented and
individually switchable for the ablation benchmarks:

1. candidates whose lower bound exceeds ``Dk+`` are pruned, both when
   updated (``prune_on_update``) and when popped for analysis
   (``prune_at_pop``);
2. candidates live in a lazily rebuilt binary heap ordered by lower bound
   instead of being fully re-sorted every round;
3. a document that has covered every query concept (and, for SDS, every
   one of its own concepts) is finalized from its now-exact partial
   distance without a DRC probe (``covered_shortcut``);
4. confirmed results are emitted progressively: a result is yielded as
   soon as its distance is at most the global lower bound
   (:meth:`KNDSearch.rds_iter` / :meth:`KNDSearch.sds_iter`).

The queue cap of Section 6.1 is honoured in spirit: when the combined BFS
frontier reaches ``queue_limit`` states, an analysis round is *forced*
(the error threshold is ignored), reproducing the "forced to examine the
collected set of documents" behaviour and its excessive-DRC side effect —
but no frontier states are dropped, so results remain exact.
"""

from __future__ import annotations

import bisect
import heapq
import time
from collections.abc import Callable, Iterator, Sequence
from typing import Any, TYPE_CHECKING
from dataclasses import dataclass, replace

from repro.core.arena import PackedDeweyArena
from repro.core.drc import DRC
from repro.core.results import QueryStats, RankedResults, ResultItem
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import QueryError, UnknownConceptError
from repro.index.base import ForwardIndexBase, InvertedIndexBase
from repro.index.memory import MemoryForwardIndex, MemoryInvertedIndex
from repro.obs.events import (ExpandedEvent, QueryEvent, RoundEvent,
                              TerminatedEvent)
from repro.obs.metrics import QueryTelemetry
from repro.obs.profiling import CostProfileBuilder, QueryCostProfile
from repro.obs.tracing import NULL_TRACER
from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology
from repro.ontology.traversal import ValidPathBFS
from repro.types import ConceptId, DocId

if TYPE_CHECKING:
    from repro.obs import Observability

RDS = "rds"
SDS = "sds"


@dataclass(frozen=True)
class KNDSConfig:
    """Tuning knobs of the kNDS algorithm.

    Attributes
    ----------
    error_threshold:
        The paper's ``εθ``: 0 analyzes a document only once its bound is
        exact (best for PATIENT-like corpora), 1 analyzes on first touch
        (closer to optimal for RADIO-like corpora).  See Figure 7.
    queue_limit:
        Combined BFS frontier size that forces an analysis round
        (Section 6.1 uses 50,000).  ``None`` disables forcing.
    dedupe:
        Prune dominated traversal states.  ``False`` reproduces the
        paper's label-free BFS for the ablation study.
    analyze_budget_per_round:
        Maximum documents analyzed per round (``None`` = unbounded, the
        pseudocode behaviour).  The paper's Table 2 trace corresponds to a
        budget of ``k``.
    prune_on_update / prune_at_pop:
        Optimization 1 at its two natural sites.
    covered_shortcut:
        Optimization 3: skip the DRC probe for fully covered documents.
    use_arena:
        Settle candidates through the packed arena kernels
        (:class:`repro.core.arena.PackedDeweyArena`) instead of per-probe
        D-Radix builds.  Results are bit-for-bit identical; ``False``
        restores the tuple path for ablation and the paper's original
        DRC-probe accounting.
    stable_ties:
        Canonical tie-breaking.  The paper's pseudocode (the default,
        ``False``) keeps the *first-settled* documents among those tied
        at the k-th distance, so top-k membership at a tie boundary
        depends on analysis order.  ``True`` orders documents by the
        full ``(distance, doc_id)`` key instead: membership, pruning,
        termination, and progressive emission all use the lexicographic
        key, making the result a pure function of the corpus and the
        query.  This is the determinism contract the sharded
        scatter-gather merge (:mod:`repro.shard`) relies on — per-shard
        top-k lists concatenate and re-sort to exactly the single-engine
        ranking.  Distances are unaffected either way; only which of
        several equally distant documents survive the boundary changes.
    """

    error_threshold: float = 0.5
    queue_limit: int | None = 50_000
    dedupe: bool = True
    analyze_budget_per_round: int | None = None
    prune_on_update: bool = True
    prune_at_pop: bool = True
    covered_shortcut: bool = True
    use_arena: bool = True
    stable_ties: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_threshold <= 1.0:
            raise QueryError(
                f"error_threshold must be in [0, 1], got {self.error_threshold}"
            )
        if self.queue_limit is not None and self.queue_limit <= 0:
            raise QueryError("queue_limit must be positive or None")


class _TopK:
    """The running top-k (the paper's ``Hk``), in either tie mode.

    The default mode is the pseudocode's max-heap over distance stored
    as ``(-distance, doc_id)``: a settle displaces the current worst
    only when *strictly* closer, so among documents tied at the k-th
    distance the first ones settled stay.  ``stable`` mode keeps the k
    lexicographically smallest ``(distance, doc_id)`` pairs in a sorted
    list instead, and the prune / convergence / emission predicates
    below tighten accordingly so no canonical member is ever pruned or
    stranded (see :attr:`KNDSConfig.stable_ties`).  k is small, so the
    ``bisect.insort`` into the sorted list is effectively O(k) on the
    rare boundary improvement and O(log k) otherwise.
    """

    __slots__ = ("k", "stable", "_heap", "_items")

    def __init__(self, k: int, stable: bool) -> None:
        self.k = k
        self.stable = stable
        self._heap: list[tuple[float, DocId]] = []   # (-distance, doc_id)
        self._items: list[tuple[float, DocId]] = []  # (distance, doc_id) asc

    def __len__(self) -> int:
        return len(self._items) if self.stable else len(self._heap)

    def settle(self, distance: float, doc_id: DocId) -> None:
        """Offer one exactly computed distance to the top-k."""
        if self.stable:
            entry = (distance, doc_id)
            if len(self._items) < self.k:
                bisect.insort(self._items, entry)
            elif entry < self._items[-1]:
                bisect.insort(self._items, entry)
                self._items.pop()
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-distance, doc_id))
        elif distance < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-distance, doc_id))

    @property
    def kth(self) -> float | None:
        """``Dk+`` — the current k-th best distance, once k are settled."""
        if self.stable:
            if len(self._items) < self.k:
                return None
            return self._items[-1][0]
        if len(self._heap) < self.k:
            return None
        return -self._heap[0][0]

    def prunable(self, bound: float, doc_id: DocId) -> bool:
        """Is a candidate with this lower bound provably outside the top-k?

        Unstable mode uses the pseudocode's ``bound >= Dk+``.  Stable
        mode compares full keys: the candidate's exact distance is at
        least ``bound``, and the boundary key ``(Dk+, boundary_id)``
        only ever decreases, so ``(bound, doc_id) >= boundary`` means
        the candidate can never displace a canonical member.  (With
        ``bound < Dk+`` this reduces to the same check; the key
        comparison only bites exactly at a distance tie.)
        """
        if self.stable:
            if len(self._items) < self.k:
                return False
            return (bound, doc_id) >= self._items[-1]
        kth = self.kth
        return kth is not None and bound >= kth

    def converged(self, global_lower: float) -> bool:
        """May the search stop — can no unanalyzed document still enter?

        Stable mode must keep going at ``global_lower == Dk+``: an
        unanalyzed document tied at the boundary distance could still
        win on doc id, so only a *strictly* larger lower bound is
        conclusive.  The extra work is at most one more analysis round
        per boundary tie, since the unseen-document bound grows with
        every BFS level.
        """
        kth = self.kth
        if kth is None:
            return False
        return global_lower > kth if self.stable else global_lower >= kth

    def emittable(self, distance: float, global_lower: float) -> bool:
        """May a settled result be progressively emitted already?

        Stable mode is strict for the same reason as :meth:`converged`:
        a member at ``distance == global_lower`` could yet be displaced
        by an equally distant, smaller-id document still unanalyzed.
        Boundary ties therefore flush at termination instead.
        """
        if self.stable:
            return distance < global_lower
        return distance <= global_lower

    def items(self) -> list[tuple[float, DocId]]:
        """``(distance, doc_id)`` pairs; ascending in stable mode,
        heap-ordered otherwise (callers sort)."""
        if self.stable:
            return list(self._items)
        return [(-negative, doc_id) for negative, doc_id in self._heap]


class _RDSCandidate:
    """Per-document bookkeeping for an RDS query (the hash ``Md``)."""

    __slots__ = ("doc_id", "covered", "covered_sum")

    def __init__(self, doc_id: DocId) -> None:
        self.doc_id = doc_id
        self.covered: dict[ConceptId, int] = {}
        self.covered_sum = 0

    def note(self, origin: ConceptId, concept: ConceptId, level: int) -> None:
        # Values are set once so Md keeps the minimum distance (BFS visits
        # in distance order); the running sum makes partial/lower O(1)
        # instead of re-summing the map on every bound refresh.
        if origin not in self.covered:
            self.covered[origin] = level
            self.covered_sum += level

    def partial(self, num_query: int) -> float:
        return float(self.covered_sum)

    def lower(self, level: int, num_query: int) -> float:
        uncovered = num_query - len(self.covered)
        return self.covered_sum + uncovered * (level + 1)

    def fully_covered(self, num_query: int) -> bool:
        return len(self.covered) == num_query


class _SDSCandidate:
    """Per-document bookkeeping for an SDS query (``Md`` and ``M'd``)."""

    __slots__ = ("doc_id", "covered_query", "covered_doc", "doc_size",
                 "covered_query_sum", "covered_doc_sum")

    def __init__(self, doc_id: DocId, doc_size: int) -> None:
        self.doc_id = doc_id
        self.doc_size = doc_size
        # query concept -> min distance to a concept of this document
        self.covered_query: dict[ConceptId, int] = {}
        # concept of this document -> min distance to a query concept
        self.covered_doc: dict[ConceptId, int] = {}
        self.covered_query_sum = 0
        self.covered_doc_sum = 0

    def note(self, origin: ConceptId, concept: ConceptId, level: int) -> None:
        # First insert wins (BFS level order == distance order); running
        # sums keep the per-refresh bound computation O(1).
        if origin not in self.covered_query:
            self.covered_query[origin] = level
            self.covered_query_sum += level
        if concept not in self.covered_doc:
            self.covered_doc[concept] = level
            self.covered_doc_sum += level

    def partial(self, num_query: int) -> float:
        return (self.covered_doc_sum / self.doc_size
                + self.covered_query_sum / num_query)

    def lower(self, level: int, num_query: int) -> float:
        optimistic = level + 1
        doc_term = (self.covered_doc_sum
                    + (self.doc_size - len(self.covered_doc)) * optimistic)
        query_term = (self.covered_query_sum
                      + (num_query - len(self.covered_query)) * optimistic)
        return doc_term / self.doc_size + query_term / num_query

    def fully_covered(self, num_query: int) -> bool:
        return (len(self.covered_query) == num_query
                and len(self.covered_doc) == self.doc_size)


class KNDSearch:
    """kNDS over one ontology/corpus pair.

    Parameters
    ----------
    ontology:
        The validated concept DAG.
    collection:
        The corpus; used to build default in-memory indexes when explicit
        backends are not supplied.  May be ``None`` if both indexes are
        given.
    inverted, forward:
        Index backends (any implementation of the interfaces in
        :mod:`repro.index.base`).
    dewey, drc:
        Optional shared instances, so several searchers (or a searcher and
        a baseline) can reuse memoized Dewey addresses.
    arena:
        Optional shared :class:`repro.core.arena.PackedDeweyArena`.  When
        omitted, the searcher adopts ``drc.arena`` if the DRC carries one,
        else it builds its own over the shared Dewey index — so every
        searcher has an arena and ``KNDSConfig.use_arena`` is purely a
        per-query routing decision.
    obs:
        An optional :class:`repro.obs.Observability` bundle.  When set,
        the search emits spans (one per BFS level and analysis round),
        publishes its per-query counters into the metrics registry, and
        mirrors observer snapshots onto the bundle's event stream.
    """

    def __init__(self, ontology: Ontology,
                 collection: DocumentCollection | None = None, *,
                 inverted: InvertedIndexBase | None = None,
                 forward: ForwardIndexBase | None = None,
                 dewey: DeweyIndex | None = None,
                 drc: DRC | None = None,
                 arena: PackedDeweyArena | None = None,
                 obs: "Observability | None" = None) -> None:
        if inverted is None or forward is None:
            if collection is None:
                raise QueryError(
                    "provide a collection or explicit inverted+forward indexes"
                )
            inverted = inverted or MemoryInvertedIndex.from_collection(
                collection, ontology=ontology)
            forward = forward or MemoryForwardIndex.from_collection(collection)
        self.ontology = ontology
        self.inverted = inverted
        self.forward = forward
        self.dewey = dewey or DeweyIndex(ontology)
        self.drc = drc or DRC(ontology, self.dewey)
        if arena is None:
            arena = (self.drc.arena if self.drc.arena is not None
                     else PackedDeweyArena(ontology, self.dewey))
        self.arena = arena
        self._obs = obs

    def instrument(self, obs: "Observability | None") -> None:
        """Attach an :class:`repro.obs.Observability` bundle (or ``None``).

        Only affects this searcher's own emission and its arena; index
        backends and the DRC carry their own hooks (the engine wires all
        of them at once).
        """
        self._obs = obs
        self.arena.instrument(obs)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def rds(self, query_concepts: Sequence[ConceptId], k: int,
            config: KNDSConfig | None = None, *,
            observer: Callable[[QueryEvent], None] | None = None,
            analyze: bool = False,
            **overrides: Any) -> RankedResults:
        """Top-k Relevant Document Search (Definition 1).

        ``observer``, if given, is called with a typed snapshot event
        (:mod:`repro.obs.events` — still a plain dict) after each
        expansion, at the end of each round, and once on termination —
        the view of ``Sd``, ``Ld``, ``Ec``, ``Hk``, ``D−`` and ``Dk+``
        that the paper's Table 2 prints (used by the trace tests and
        handy for debugging).

        ``analyze=True`` additionally attaches a
        :class:`~repro.obs.profiling.QueryCostProfile` to the returned
        results (``RankedResults.cost_profile``): the per-round
        ``D−``/``Dk+`` bound trajectory, termination level/reason, and
        arena counter deltas on top of the usual work counters.
        """
        config = _resolve_config(config, overrides)
        telemetry = QueryTelemetry()
        builder = CostProfileBuilder() if analyze else None
        items = list(self._run(tuple(query_concepts), k, RDS, config,
                               telemetry, observer, builder))
        return RankedResults(items, QueryStats.from_metrics(telemetry),
                             algorithm="knds", query_kind=RDS, k=k,
                             cost_profile=self._profile(
                                 telemetry, builder, RDS, k, config))

    def sds(self, query_document: Document | Sequence[ConceptId], k: int,
            config: KNDSConfig | None = None, *,
            observer: Callable[[QueryEvent], None] | None = None,
            analyze: bool = False,
            **overrides: Any) -> RankedResults:
        """Top-k Similar Document Search (Definition 2).

        ``query_document`` may be a :class:`Document` or a bare concept
        sequence.  If the query document belongs to the indexed corpus,
        exclude it from the results by filtering ``doc_id`` afterwards —
        the algorithm ranks every indexed document, including an exact
        duplicate at distance 0, exactly as the paper's experiments do.
        ``analyze=True`` attaches a cost profile (see :meth:`rds`).
        """
        config = _resolve_config(config, overrides)
        concepts = _document_concepts(query_document)
        telemetry = QueryTelemetry()
        builder = CostProfileBuilder() if analyze else None
        items = list(self._run(concepts, k, SDS, config, telemetry,
                               observer, builder))
        return RankedResults(items, QueryStats.from_metrics(telemetry),
                             algorithm="knds", query_kind=SDS, k=k,
                             cost_profile=self._profile(
                                 telemetry, builder, SDS, k, config))

    def _profile(self, telemetry: QueryTelemetry,
                 builder: CostProfileBuilder | None, mode: str, k: int,
                 config: KNDSConfig) -> QueryCostProfile | None:
        """Assemble the cost profile for an ``analyze=True`` query."""
        if builder is None:
            return None
        return QueryCostProfile.from_run(
            telemetry, builder, algorithm="knds", query_kind=mode, k=k,
            path="arena" if config.use_arena else "tuple")

    def rds_iter(self, query_concepts: Sequence[ConceptId], k: int,
                 config: KNDSConfig | None = None,
                 **overrides: Any) -> Iterator[ResultItem]:
        """Progressive RDS: yields each result as soon as it is confirmed
        (optimization 4 of Section 5.3)."""
        config = _resolve_config(config, overrides)
        return self._run(tuple(query_concepts), k, RDS, config,
                         QueryTelemetry())

    def sds_iter(self, query_document: Document | Sequence[ConceptId], k: int,
                 config: KNDSConfig | None = None,
                 **overrides: Any) -> Iterator[ResultItem]:
        """Progressive SDS (see :meth:`rds_iter`)."""
        config = _resolve_config(config, overrides)
        concepts = _document_concepts(query_document)
        return self._run(concepts, k, SDS, config, QueryTelemetry())

    # ------------------------------------------------------------------
    # Core search
    # ------------------------------------------------------------------
    def _run(self, query_concepts: tuple[ConceptId, ...], k: int, mode: str,
             config: KNDSConfig, telemetry: QueryTelemetry,
             observer: Callable[[QueryEvent], None] | None = None,
             profile: CostProfileBuilder | None = None,
             ) -> Iterator[ResultItem]:
        start = time.perf_counter()
        query = _validated_query(self.ontology, query_concepts, k)
        num_query = len(query)
        # Intern the query once: every settle below reuses the ids and the
        # shared concept-distance cache instead of rebuilding per probe.
        query_ids = (self.arena.intern_unique(query)
                     if config.use_arena else None)
        if profile is not None:
            cache_stats = self.arena.cache.stats
            profile.arena_before(self.arena.pair_lookups,
                                 self.arena.pair_kernels,
                                 cache_stats.hits, cache_stats.misses)

        obs = self._obs
        tracer = obs.tracer if obs is not None else NULL_TRACER
        sinks = [sink for sink in (
            observer,
            obs.events.emit if obs is not None and obs.events is not None
            else None,
        ) if sink is not None]

        searches = [
            ValidPathBFS(self.ontology, origin, dedupe=config.dedupe)
            for origin in query
        ]
        candidates: dict[DocId, _RDSCandidate | _SDSCandidate] = {}
        candidate_heap: list[tuple[float, DocId]] = []
        closed: set[DocId] = set()  # analyzed or pruned (the hash Sd)
        top = _TopK(k, config.stable_ties)
        emitted: set[DocId] = set()
        level = -1
        reason = "exhausted"

        with tracer.span(f"knds.{mode}", k=k, num_query=num_query):
            while True:
                # ---- breadth-first expansion: one level per search ----
                with tracer.span("knds.level") as level_span:
                    traversal_start = time.perf_counter()
                    advanced = False
                    for search in searches:
                        if search.exhausted():
                            continue
                        try:
                            _lvl, nodes = next(search)
                        except StopIteration:  # pragma: no cover - guarded
                            continue
                        advanced = True
                        self._collect(search.origin, nodes, level + 1, mode,
                                      num_query, candidates,
                                      candidate_heap, closed, top,
                                      config, telemetry)
                    if advanced:
                        level += 1
                        telemetry.bfs_levels += 1
                    telemetry.traversal_seconds += \
                        time.perf_counter() - traversal_start
                    level_span.set_attribute("level", level)
                    level_span.set_attribute("advanced", advanced)

                if sinks:
                    _emit(sinks, _snapshot(
                        ExpandedEvent, level, num_query, searches, candidates,
                        closed, top, None))

                exhausted = all(search.exhausted() for search in searches)
                pending = sum(search.pending_states() for search in searches)
                forced = exhausted or (
                    config.queue_limit is not None
                    and pending >= config.queue_limit
                )
                if forced and not exhausted:
                    telemetry.forced_rounds += 1

                # ---- distance calculation / analysis phase ----
                with tracer.span("knds.analyze", level=level,
                                 forced=forced) as analyze_span:
                    examined_before = telemetry.docs_examined
                    self._analyze(query, query_ids, mode, num_query,
                                  level, forced, candidates, candidate_heap,
                                  closed, top, config, telemetry)
                    analyze_span.set_attribute(
                        "examined", telemetry.docs_examined - examined_before)

                # ---- progressive emission and termination ----
                global_lower = self._global_lower(
                    candidates, candidate_heap, level, num_query, exhausted,
                    mode)
                if profile is not None:
                    profile.note_round(level, global_lower, top.kth)
                if sinks:
                    _emit(sinks, _snapshot(
                        RoundEvent, level, num_query, searches, candidates,
                        closed, top, global_lower))
                confirmed = sorted(
                    item for item in top.items() if item[1] not in emitted)
                for distance, doc_id in confirmed:
                    if top.emittable(distance, global_lower):
                        emitted.add(doc_id)
                        yield ResultItem(doc_id, distance)
                if top.converged(global_lower):
                    reason = "converged"
                    break
                if exhausted and not candidates:
                    reason = "exhausted"
                    break

            if profile is not None:
                profile.note_termination(level, reason)
                cache_stats = self.arena.cache.stats
                profile.arena_after(self.arena.pair_lookups,
                                    self.arena.pair_kernels,
                                    cache_stats.hits, cache_stats.misses)

            if sinks:
                _emit(sinks, _snapshot(
                    TerminatedEvent, level, num_query, searches, candidates,
                    closed, top, global_lower, reason=reason))

            # Flush anything confirmed only by termination.
            remaining = sorted(
                item for item in top.items() if item[1] not in emitted)
            for distance, doc_id in remaining:
                yield ResultItem(doc_id, distance)
            telemetry.total_seconds += time.perf_counter() - start
            if obs is not None:
                # One aggregated leaf span for the distance layer: the
                # settle loop runs per candidate (far too hot for a span
                # each), so the cumulative distance time is reported as a
                # single synthetic leaf under the knds span — enough for
                # per-request "where did the time go" attribution.
                distance_end = time.perf_counter()
                distance_start = distance_end - telemetry.distance_seconds
                if telemetry.arena_calls:
                    tracer.record("arena.distance", distance_start,
                                  distance_end,
                                  calls=telemetry.arena_calls)
                elif telemetry.drc_calls:
                    tracer.record("drc.probe", distance_start, distance_end,
                                  calls=telemetry.drc_calls)
                telemetry.publish(obs.metrics, prefix="knds")

    # ------------------------------------------------------------------
    def _collect(self, origin: ConceptId, nodes: list[ConceptId], level: int,
                 mode: str, num_query: int,
                 candidates: dict[DocId, "_RDSCandidate | _SDSCandidate"],
                 candidate_heap: list[tuple[float, DocId]],
                 closed: set[DocId], top: _TopK,
                 config: KNDSConfig, telemetry: QueryTelemetry) -> None:
        """Process the freshly visited concepts of one BFS level."""
        for concept in nodes:
            telemetry.nodes_visited += 1
            io_start = time.perf_counter()
            postings = self.inverted.postings(concept)
            telemetry.io_seconds += time.perf_counter() - io_start
            for doc_id in postings:
                if doc_id in closed:
                    continue
                candidate = candidates.get(doc_id)
                if candidate is None:
                    candidate = self._new_candidate(doc_id, mode, telemetry)
                    candidates[doc_id] = candidate
                    telemetry.docs_touched += 1
                candidate.note(origin, concept, level)
                # Mid-round, only the *previous* level is guaranteed to be
                # fully processed across all origins, so bounds computed
                # here must charge uncovered terms with the completed
                # level.  Using the in-flight level would overestimate,
                # prune documents wrongly, and break the heap's
                # stored-bound <= fresh-bound invariant.
                bound = candidate.lower(level - 1, num_query)
                if config.prune_on_update and top.prunable(bound, doc_id):
                    # Optimization 1: the bound can only grow and the k-th
                    # distance can only shrink, so this document is out.
                    del candidates[doc_id]
                    closed.add(doc_id)
                    telemetry.docs_pruned += 1
                    continue
                heapq.heappush(candidate_heap, (bound, doc_id))

    def _new_candidate(self, doc_id: DocId, mode: str,
                       telemetry: QueryTelemetry,
                       ) -> "_RDSCandidate | _SDSCandidate":
        if mode == RDS:
            return _RDSCandidate(doc_id)
        io_start = time.perf_counter()
        size = self.forward.concept_count(doc_id)
        telemetry.io_seconds += time.perf_counter() - io_start
        return _SDSCandidate(doc_id, size)

    # ------------------------------------------------------------------
    def _analyze(self, query: tuple[ConceptId, ...],
                 query_ids: list[int] | None, mode: str,
                 num_query: int, level: int, forced: bool,
                 candidates: dict[DocId, "_RDSCandidate | _SDSCandidate"],
                 candidate_heap: list[tuple[float, DocId]],
                 closed: set[DocId], top: _TopK,
                 config: KNDSConfig, telemetry: QueryTelemetry) -> None:
        """Pop candidates in lower-bound order and settle their distances."""
        budget = config.analyze_budget_per_round
        while candidate_heap:
            if budget is not None and budget <= 0:
                break
            stored_bound, doc_id = candidate_heap[0]
            candidate = candidates.get(doc_id)
            if candidate is None:
                heapq.heappop(candidate_heap)  # stale: already settled
                continue
            fresh_bound = candidate.lower(level, num_query)
            if fresh_bound > stored_bound:
                # Stale entry: reinsert with the current bound.
                heapq.heapreplace(candidate_heap, (fresh_bound, doc_id))
                continue
            if config.prune_at_pop and top.prunable(fresh_bound, doc_id):
                # Optimization 1 at the pop site; the paper's bare
                # pseudocode has no Dk+ check here and would analyze the
                # document anyway (see the Table 2 trace, document d6).
                heapq.heappop(candidate_heap)
                del candidates[doc_id]
                closed.add(doc_id)
                telemetry.docs_pruned += 1
                continue
            if not forced:
                error = _error_estimate(
                    candidate.partial(num_query), fresh_bound)
                if error > config.error_threshold:
                    break
            heapq.heappop(candidate_heap)
            del candidates[doc_id]
            closed.add(doc_id)
            distance = self._settle(candidate, query, query_ids, mode,
                                    num_query, config, telemetry)
            telemetry.docs_examined += 1
            if budget is not None:
                budget -= 1
            top.settle(distance, doc_id)

    def _settle(self, candidate: "_RDSCandidate | _SDSCandidate",
                query: tuple[ConceptId, ...], query_ids: list[int] | None,
                mode: str, num_query: int, config: KNDSConfig,
                telemetry: QueryTelemetry) -> float:
        """Exact distance for one candidate: shortcut, arena, or DRC probe."""
        if config.covered_shortcut and candidate.fully_covered(num_query):
            # All terms of the distance are covered, so the partial value
            # is already exact — no DRC probe needed (optimization 3).
            telemetry.covered_shortcuts += 1
            return candidate.partial(num_query)
        io_start = time.perf_counter()
        doc_concepts = self.forward.concepts(candidate.doc_id)
        telemetry.io_seconds += time.perf_counter() - io_start
        distance_start = time.perf_counter()
        if query_ids is not None:
            # Arena path: same floats as the D-Radix build, but every
            # concept pair is served from the shared cache, and on the
            # numpy kernel tier ddq_ids/ddd_ids resolve the candidate's
            # whole pair list in one vectorized batch call (see
            # docs/PERFORMANCE.md, "The kernel ladder").  knds.arena_calls
            # stays one per settle across tiers.
            doc_ids = self.arena.intern_unique(doc_concepts)
            if mode == RDS:
                distance = self.arena.ddq_ids(doc_ids, query_ids)
            else:
                distance = self.arena.ddd_ids(doc_ids, query_ids)
            telemetry.distance_seconds += time.perf_counter() - distance_start
            telemetry.arena_calls += 1
            return float(distance)
        if mode == RDS:
            distance = self.drc.document_query_distance(doc_concepts, query)
        else:
            distance = self.drc.document_document_distance(doc_concepts, query)
        telemetry.distance_seconds += time.perf_counter() - distance_start
        telemetry.drc_calls += 1
        return float(distance)

    # ------------------------------------------------------------------
    @staticmethod
    def _global_lower(candidates: dict[DocId, "_RDSCandidate | _SDSCandidate"],
                      candidate_heap: list[tuple[float, DocId]], level: int,
                      num_query: int, exhausted: bool, mode: str) -> float:
        """Smallest possible distance of any unanalyzed document.

        The minimum of the best candidate's lower bound and the bound on
        never-touched documents: ``|q|·(l+1)`` for RDS (every query term
        uncovered) and ``(l+1) + (l+1)`` for SDS (both normalized sums
        entirely uncovered).  Once traversal is exhausted no untouched
        documents exist and candidate bounds are exact.
        """
        best = _min_candidate_bound(candidates, candidate_heap, level,
                                    num_query)
        if not exhausted:
            if mode == RDS:
                unseen = float(num_query * (level + 1))
            else:
                unseen = float(2 * (level + 1))
            best = min(best, unseen)
        return best


def _emit(sinks: list[Callable[[QueryEvent], None]],
          event: QueryEvent) -> None:
    """Deliver one query event to every attached sink."""
    for sink in sinks:
        sink(event)


def _snapshot(event_cls: type[QueryEvent], level: int, num_query: int,
              searches: list[ValidPathBFS],
              candidates: dict[DocId, "_RDSCandidate | _SDSCandidate"],
              closed: set[DocId], top: _TopK,
              global_lower: float | None, **extra: Any) -> QueryEvent:
    """Observer view of the algorithm state (the columns of Table 2).

    Returns an instance of ``event_cls`` (one of the typed events in
    :mod:`repro.obs.events`); being dict subclasses, they remain
    drop-in compatible with observers written against the raw dicts.
    """
    return event_cls(
        level=level,
        examined=frozenset(closed),
        candidates={
            doc_id: candidate.lower(level, num_query)
            for doc_id, candidate in candidates.items()
        },
        frontier=frozenset(
            (search.origin, node)
            for search in searches
            for node in search.frontier_nodes()
        ),
        top={doc_id: distance for distance, doc_id in top.items()},
        kth_distance=top.kth,
        global_lower=global_lower,
        **extra,
    )


def _min_candidate_bound(candidates: dict[DocId, "_RDSCandidate | _SDSCandidate"],
                         candidate_heap: list[tuple[float, DocId]], level: int,
                         num_query: int) -> float:
    """Minimum *fresh* lower bound over live candidates.

    The heap stores bounds computed when entries were pushed; bounds only
    grow as the level advances, so the front is lazily refreshed (dead
    entries dropped, stale ones re-keyed) until it is exact.  At that point
    the front's bound is a true minimum: every other stored key is at least
    the front's, and fresh bounds only exceed stored ones.
    """
    while candidate_heap:
        stored_bound, doc_id = candidate_heap[0]
        candidate = candidates.get(doc_id)
        if candidate is None:
            heapq.heappop(candidate_heap)
            continue
        fresh_bound = candidate.lower(level, num_query)
        if fresh_bound > stored_bound:
            heapq.heapreplace(candidate_heap, (fresh_bound, doc_id))
            continue
        return stored_bound
    return float("inf")


def _error_estimate(partial: float, lower: float) -> float:
    """The paper's Eq. 9, with the 0/0 corner defined as exact (ε = 0)."""
    if lower <= 0.0:
        return 0.0
    return 1.0 - partial / lower


def _validated_query(ontology: Ontology, query_concepts: Sequence[ConceptId],
                     k: int) -> tuple[ConceptId, ...]:
    if k <= 0:
        raise QueryError(f"k must be positive, got {k}")
    unique = tuple(dict.fromkeys(query_concepts))
    if not unique:
        raise QueryError("query must contain at least one concept")
    for concept in unique:
        if concept not in ontology:
            raise UnknownConceptError(concept)
    return unique


def _document_concepts(
    query_document: Document | Sequence[ConceptId],
) -> tuple[ConceptId, ...]:
    if isinstance(query_document, Document):
        return query_document.require_concepts()
    return tuple(query_document)


def _resolve_config(config: KNDSConfig | None,
                    overrides: dict[str, Any]) -> KNDSConfig:
    base = config or KNDSConfig()
    if overrides:
        base = replace(base, **overrides)
    return base
