"""Optional vectorized batch LCP kernel (the ``numpy`` arena kernel tier).

The scalar packed kernel (:meth:`repro.core.arena.PackedDeweyArena._pair_kernel`)
walks one address pair at a time in interpreted Python; this module
evaluates *every cache-missing pair of a batch* in a handful of numpy
array operations instead.  It is the top rung of the kernel ladder
(tuple → packed → numpy, see docs/PERFORMANCE.md): strictly an execution
strategy, never a semantics change — the distances it returns are
bit-for-bit identical to the scalar kernel, and the arena keeps all
counter accounting (``pair_lookups``/``pair_kernels``) itself so work
gating stays deterministic across tiers.

numpy ships behind the ``perf`` extra (``pip install repro[perf]``); the
base install stays dependency-free.  When numpy is missing,
:func:`available` returns ``False`` and the arena silently stays on the
packed tier.

How the vectorization works
---------------------------
All interned addresses are rectangularized once per snapshot into a
``(slots, max_len)`` int64 matrix padded with ``-1`` (components are
unsigned, so padding can never equal a real component).  For a batch of
concept pairs, the per-pair address cross products are expanded into
three flat index vectors (row in the matrix for side a, side b, and the
owning pair), the LCP of every address pair is the row-sum of the
leading run of equalities (``cumprod`` trick), clamped to
``min(len_a, len_b)`` so equal-length padding can never overcount, and
``np.minimum.at`` folds ``len_a + len_b - 2*lcp`` down to one minimum
per pair — the Dewey-pair identity the scalar kernel computes, exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.exceptions import InvariantError

if TYPE_CHECKING:
    from repro.core.arena import PackedDeweyArena

try:  # pragma: no cover - exercised implicitly by tier selection
    import numpy as _np
except ImportError:  # pragma: no cover - base install has no numpy
    _np = None  # type: ignore[assignment]

__all__ = ["available", "NumpyBatchKernel"]


def available() -> bool:
    """True when numpy is importable (the ``perf`` extra is installed)."""
    return _np is not None


class _Snapshot:
    """One immutable padded-matrix view of an arena's packed buffers.

    All fields are written once in ``__init__`` and never mutated, so a
    snapshot can be handed between threads freely; staleness is decided
    by ``limit``/``epoch`` alone.
    """

    __slots__ = ("limit", "epoch", "starts", "counts", "lengths", "matrix")

    def __init__(self, arena: "PackedDeweyArena") -> None:
        # .tobytes() copies atomically under the GIL without exporting
        # the array's buffer, so a concurrent intern can never trip a
        # BufferError; count= clips each copy to the consistent prefix.
        # _slots is the last buffer an intern appends to, so slicing
        # _bounds/_data up to the offsets it names can never see a
        # half-written concept.
        epoch = arena.epoch
        data_buf, bounds_buf, slots_buf = \
            arena._data, arena._bounds, arena._slots
        concept_count = len(slots_buf) - 1
        slots = _np.frombuffer(slots_buf.tobytes(), dtype=_np.uint32,
                               count=concept_count + 1).astype(_np.int64)
        bound_count = int(slots[-1]) + 1
        bounds = _np.frombuffer(bounds_buf.tobytes(), dtype=_np.uint32,
                                count=bound_count).astype(_np.int64)
        data_count = int(bounds[-1])
        data = _np.frombuffer(data_buf.tobytes(), dtype=_np.uint32,
                              count=data_count).astype(_np.int64)
        lengths = bounds[1:] - bounds[:-1]
        max_len = int(lengths.max()) if lengths.size else 1
        matrix = _np.full((lengths.size, max(max_len, 1)), -1,
                          dtype=_np.int64)
        if data.size:
            columns = _np.arange(matrix.shape[1], dtype=_np.int64)
            matrix[columns[None, :] < lengths[:, None]] = data
        self.starts = slots[:-1]
        self.counts = slots[1:] - slots[:-1]
        self.lengths = lengths
        self.matrix = matrix
        self.limit = concept_count
        self.epoch = epoch


class NumpyBatchKernel:
    """Padded-matrix snapshot of one arena + the batched min-LCP kernel.

    The snapshot copies the packed buffers into numpy working arrays
    (padding is inherently a copy), covering the first ``limit``
    interned concepts.  Interning is append-only within an epoch, so a
    snapshot never goes *wrong*, only *stale*; :meth:`distances`
    rebuilds it when a requested id falls past the covered prefix and
    on epoch changes.  Thread-safe without a lock: the snapshot is one
    immutable object swapped atomically under the GIL, and each call
    reads it through a single local reference — concurrent rebuilds can
    cost a redundant copy, never a torn or wrong distance.
    """

    def __init__(self) -> None:
        if _np is None:
            raise InvariantError(
                "NumpyBatchKernel constructed without numpy installed; "
                "gate construction on npkernel.available()")
        self._snapshot: "_Snapshot | None" = None

    def refresh(self, arena: "PackedDeweyArena") -> "_Snapshot":
        """Rebuild the padded matrices from the arena's packed buffers."""
        snapshot = _Snapshot(arena)
        self._snapshot = snapshot
        return snapshot

    def distances(self, arena: "PackedDeweyArena",
                  pairs: Sequence[tuple[int, int]]) -> list[int]:
        """Exact pair distances for a batch of interned-id pairs.

        One vectorized evaluation for the whole batch; bit-for-bit equal
        to running the scalar kernel per pair (the minimum is a total
        function of the same integer identity — the scalar early exit at
        distance <= 1 is a shortcut to the same minimum, never a
        different value).
        """
        if not pairs:
            return []
        highest = max(max(first, second) for first, second in pairs)
        snapshot = self._snapshot
        if (snapshot is None or highest >= snapshot.limit
                or snapshot.epoch != arena.epoch):
            snapshot = self.refresh(arena)
            if highest >= snapshot.limit:
                raise InvariantError(
                    f"interned id {highest} out of arena range "
                    f"{snapshot.limit}")
        count = len(pairs)
        first = _np.fromiter((pair[0] for pair in pairs),
                             dtype=_np.int64, count=count)
        second = _np.fromiter((pair[1] for pair in pairs),
                              dtype=_np.int64, count=count)
        counts_a = snapshot.counts[first]
        counts_b = snapshot.counts[second]
        per_pair = counts_a * counts_b
        total = int(per_pair.sum())
        if total == 0:
            raise InvariantError(
                "concept with zero packed addresses in batch kernel")
        owner = _np.repeat(_np.arange(count, dtype=_np.int64), per_pair)
        # Position of each address pair within its concept pair's cross
        # product: row-major over (address of a, address of b).
        pair_starts = _np.cumsum(per_pair) - per_pair
        within = _np.arange(total, dtype=_np.int64) \
            - _np.repeat(pair_starts, per_pair)
        stride_b = _np.repeat(counts_b, per_pair)
        rows_a = _np.repeat(snapshot.starts[first], per_pair) \
            + within // stride_b
        rows_b = _np.repeat(snapshot.starts[second], per_pair) \
            + within % stride_b
        side_a = snapshot.matrix[rows_a]
        side_b = snapshot.matrix[rows_b]
        len_a = snapshot.lengths[rows_a]
        len_b = snapshot.lengths[rows_b]
        lcp = _np.cumprod(side_a == side_b, axis=1).sum(axis=1)
        lcp = _np.minimum(lcp, _np.minimum(len_a, len_b))
        distance = len_a + len_b - 2 * lcp
        minima = _np.full(count, _np.iinfo(_np.int64).max, dtype=_np.int64)
        _np.minimum.at(minima, owner, distance)
        return [int(value) for value in minima]
