"""Zero-copy shared-memory arena snapshots (``repro.core.sharena``).

PR 9 made serving multi-process, but every shard worker still packed its
own private :class:`repro.core.arena.PackedDeweyArena` — the same
ontology addresses interned N times, multiplying both cold-start latency
and resident memory by shard count.  This module seals one fully
interned arena into a ``multiprocessing.shared_memory`` segment that
workers attach **read-only in O(1)**: the three packed buffers are
mapped, never copied, so N workers share one physical copy per host.

Segment layout (little-endian)::

    magic    4s   b"RPA1" — repro packed arena
    version  u32  bump on incompatible layout changes
    epoch    u64  the publishing arena's epoch at seal time
    data     u64  words in the _data buffer
    bounds   u64  words in the _bounds buffer
    slots    u64  words in the _slots buffer
    concepts u64  bytes of the JSON-encoded concept list
    ...payloads in the same order, 4-byte words then the JSON blob

The concept list pins the interned-id space: ids are positions in
interning order, so shipping the ordered list lets every attacher
rebuild the exact ``concept -> id`` map of the publisher — which is what
makes cached distances, cache tokens and packed offsets portable.

Lifecycle contract: the coordinator owns the segment
(:class:`SharedArenaSegment`) and unlinks it on drain; workers attach a
:class:`SharedArenaView` and detach on exit.  Attach validates magic,
version, sizes, and the epoch stamped in the :class:`SharedArenaSpec` it
was handed — any mismatch raises
:class:`repro.exceptions.ArenaSnapshotError`, which
:func:`try_attach` converts into ``None`` so callers fall back to
re-packing a private arena (correctness never depends on the segment).
"""

from __future__ import annotations

import json
import struct
import threading
from array import array
from dataclasses import dataclass
from multiprocessing import shared_memory

from repro.core.arena import (DEFAULT_CACHE_ENTRIES, ConceptDistanceCache,
                              PackedDeweyArena)
from repro.exceptions import (ArenaSnapshotError, InvariantError,
                              UnknownConceptError)
from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology
from repro.types import ConceptId

__all__ = ["SharedArenaSpec", "SharedArenaSegment", "SharedArenaView",
           "publish_snapshot", "attach_view", "try_attach"]

_MAGIC = b"RPA1"
_VERSION = 1
_HEADER = struct.Struct("<4sIQQQQQ")
_WORD = 4  # array('I') item size on every supported platform


@dataclass(frozen=True)
class SharedArenaSpec:
    """Picklable locator for one published snapshot.

    Shipped to shard workers inside :class:`repro.shard.worker.WorkerSpec`;
    ``epoch`` lets an attacher reject a segment that was republished (or
    never matched) without trusting segment contents alone, and
    ``nbytes`` is the once-per-host figure behind the
    ``resource.arena_shared_bytes`` gauge.
    """

    name: str
    epoch: int
    nbytes: int


class SharedArenaSegment:
    """Owner handle of one published segment (coordinator side).

    Keeps the :class:`~multiprocessing.shared_memory.SharedMemory`
    object alive for the serving lifetime and unlinks it on
    :meth:`unlink` (idempotent).  On Linux the memory itself persists
    until the last attacher detaches, so unlinking while workers drain
    is safe — new attaches simply start failing, which is exactly the
    re-pack fallback path.
    """

    def __init__(self, shm: shared_memory.SharedMemory,
                 spec: SharedArenaSpec) -> None:
        self._shm: shared_memory.SharedMemory | None = shm
        self.spec = spec

    def unlink(self) -> None:
        """Close the owner mapping and remove the segment name."""
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SharedArenaSegment":
        """Enter a with-block owning the segment."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Unlink on exit."""
        self.unlink()


def publish_snapshot(arena: PackedDeweyArena) -> SharedArenaSegment:
    """Seal ``arena`` (fully interned first) into a shared segment.

    Interns every ontology concept that is not already packed — the
    snapshot must cover the whole id space, because attached views are
    frozen — then copies the three packed buffers plus the ordered
    concept list behind a versioned header.  The returned segment is
    the coordinator's to :meth:`~SharedArenaSegment.unlink` on drain.
    """
    for concept in arena.ontology:
        arena.concept_id(concept)
    with arena._intern_lock:
        data = arena._data.tobytes()
        bounds = arena._bounds.tobytes()
        slots = arena._slots.tobytes()
        concepts_blob = json.dumps(list(arena._concepts)).encode("utf-8")
        epoch = arena.epoch
    header = _HEADER.pack(_MAGIC, _VERSION, epoch,
                          len(data) // _WORD, len(bounds) // _WORD,
                          len(slots) // _WORD, len(concepts_blob))
    total = len(header) + len(data) + len(bounds) + len(slots) \
        + len(concepts_blob)
    shm = shared_memory.SharedMemory(create=True, size=total)
    try:
        offset = 0
        for chunk in (header, data, bounds, slots, concepts_blob):
            shm.buf[offset:offset + len(chunk)] = chunk
            offset += len(chunk)
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    # shm.size may exceed the requested total (page rounding); the
    # header word counts, not nbytes, delimit the payloads.
    spec = SharedArenaSpec(name=shm.name, epoch=epoch, nbytes=total)
    return SharedArenaSegment(shm, spec)


class SharedArenaView(PackedDeweyArena):
    """A frozen, read-only arena over an attached snapshot.

    The packed buffers are ``memoryview`` casts straight into the shared
    mapping — zero copies, O(1) attach regardless of ontology size — and
    the concept-id map is rebuilt from the shipped concept list, so
    every kernel (scalar or numpy tier) and every cached distance is
    bit-for-bit identical to the publishing arena's.  The distance
    cache itself is process-private (plain Python ints cannot live in
    the segment); only the buffers are shared.

    Frozen means no interning: the snapshot covers the full ontology,
    so the only concepts that can miss are ones outside the ontology —
    :class:`repro.exceptions.UnknownConceptError`, same as any arena —
    and corpus mutations never intern anything new.  ``buffer_bytes``
    reports 0 (the bytes belong to the publishing host's segment,
    counted once via :attr:`spec`), and :meth:`invalidate` refuses —
    rebuild the publisher instead.
    """

    def __init__(self, ontology: Ontology,
                 shm: shared_memory.SharedMemory, spec: SharedArenaSpec, *,
                 dewey: DeweyIndex | None = None,
                 cache: ConceptDistanceCache | None = None,
                 cache_entries: int = DEFAULT_CACHE_ENTRIES,
                 kernel_tier: str = "auto") -> None:
        super().__init__(ontology, dewey, cache=cache,
                         cache_entries=cache_entries,
                         kernel_tier=kernel_tier)
        buf = shm.buf
        if len(buf) < _HEADER.size:
            raise ArenaSnapshotError(
                f"segment {spec.name!r} is smaller than the header")
        magic, version, epoch, data_words, bounds_words, slots_words, \
            concept_bytes = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise ArenaSnapshotError(
                f"segment {spec.name!r} has foreign magic {magic!r}")
        if version != _VERSION:
            raise ArenaSnapshotError(
                f"segment {spec.name!r} is layout version {version}, "
                f"this build reads {_VERSION}")
        if epoch != spec.epoch:
            raise ArenaSnapshotError(
                f"segment {spec.name!r} stamps epoch {epoch}, expected "
                f"{spec.epoch}; the publisher re-packed — re-pack too")
        total = _HEADER.size \
            + (data_words + bounds_words + slots_words) * _WORD \
            + concept_bytes
        if len(buf) < total:
            raise ArenaSnapshotError(
                f"segment {spec.name!r} is truncated: header promises "
                f"{total} bytes, mapping holds {len(buf)}")
        offset = _HEADER.size
        data_view = buf[offset:offset + data_words * _WORD].cast("I")
        offset += data_words * _WORD
        bounds_view = buf[offset:offset + bounds_words * _WORD].cast("I")
        offset += bounds_words * _WORD
        slots_view = buf[offset:offset + slots_words * _WORD].cast("I")
        offset += slots_words * _WORD
        concepts = json.loads(
            bytes(buf[offset:offset + concept_bytes]).decode("utf-8"))
        if len(slots_view) != len(concepts) + 1:
            raise ArenaSnapshotError(
                f"segment {spec.name!r} slot table does not match its "
                f"concept list")
        self._shm: shared_memory.SharedMemory | None = shm
        self.spec = spec
        self._views = (data_view, bounds_view, slots_view)
        # Zero-copy adoption: the kernels index these views exactly as
        # they index the private array('I') buffers.
        self._data = data_view  # type: ignore[assignment]
        self._bounds = bounds_view  # type: ignore[assignment]
        self._slots = slots_view  # type: ignore[assignment]
        self._concepts = [ConceptId(concept) for concept in concepts]
        self._ids = {concept: index
                     for index, concept in enumerate(self._concepts)}
        self._epoch = epoch

    @property
    def attached(self) -> bool:
        """True while the view still maps the shared segment."""
        return self._shm is not None

    def buffer_bytes(self) -> int:
        """0: the packed bytes belong to the shared segment.

        The ``resource.arena_bytes`` gauge must count the segment once
        per host (at the publisher), not once per attached worker; the
        segment's size is :attr:`spec` ``.nbytes``.
        """
        return 0

    def shared_segment_bytes(self) -> int:
        """Size of the attached segment (the publisher-side figure)."""
        return self.spec.nbytes

    def invalidate(self) -> None:
        """Refuse: views are frozen; republish from the coordinator."""
        raise InvariantError(
            "shared arena views are read-only; invalidate the "
            "publishing arena and publish a new snapshot instead")

    def _intern(self, concept: ConceptId) -> int:
        if concept not in self.ontology:
            raise UnknownConceptError(concept)
        raise InvariantError(  # pragma: no cover - snapshot covers all
            f"shared arena snapshot is missing ontology concept "
            f"{concept!r}; republish from a fully interned arena")

    def detach(self) -> None:
        """Release the buffer views and close this process's mapping.

        Idempotent.  After detaching, the view rejects distance calls
        (its buffers are empty) — detach is for worker teardown, not a
        pause button.
        """
        shm = self._shm
        if shm is None:
            return
        self._shm = None
        self._data = array("I")
        self._bounds = array("I", [0])
        self._slots = array("I", [0])
        views, self._views = self._views, ()
        for view in views:
            view.release()
        shm.close()

    def __enter__(self) -> "SharedArenaView":
        """Enter a with-block owning the attachment."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Detach on exit."""
        self.detach()


def attach_view(spec: SharedArenaSpec, ontology: Ontology, *,
                dewey: DeweyIndex | None = None,
                cache: ConceptDistanceCache | None = None,
                cache_entries: int = DEFAULT_CACHE_ENTRIES,
                kernel_tier: str = "auto") -> SharedArenaView:
    """Attach the segment named by ``spec`` as a read-only arena view.

    Raises :class:`repro.exceptions.ArenaSnapshotError` when the
    segment is missing or fails validation (bad magic/version/epoch/
    sizes).  Attaching deliberately bypasses the ``multiprocessing``
    resource tracker: on CPython < 3.13 every attach *registers* the
    segment, so an attacher with its own tracker would unlink it at
    exit out from under the publisher, while an attacher sharing the
    publisher's tracker (our spawn-children shard workers) cannot
    safely unregister afterwards either — the tracker keys by name, so
    unregistering would erase the publisher's crash-cleanup entry.
    Suppressing registration during the attach sidesteps both.
    """
    try:
        with _tracker_lock:
            # The registration suppressor is a process-global patch, so
            # serialize attaches; they only happen at worker startup.
            from multiprocessing import resource_tracker
            original_register = resource_tracker.register
            resource_tracker.register = _no_register
            try:
                shm = shared_memory.SharedMemory(name=spec.name)
            finally:
                resource_tracker.register = original_register
    except (FileNotFoundError, OSError) as error:
        raise ArenaSnapshotError(
            f"shared arena segment {spec.name!r} is not attachable: "
            f"{error}") from error
    try:
        return SharedArenaView(ontology, shm, spec, dewey=dewey,
                               cache=cache, cache_entries=cache_entries,
                               kernel_tier=kernel_tier)
    except BaseException:
        shm.close()
        raise


def try_attach(spec: SharedArenaSpec, ontology: Ontology, *,
               dewey: DeweyIndex | None = None,
               cache: ConceptDistanceCache | None = None,
               cache_entries: int = DEFAULT_CACHE_ENTRIES,
               kernel_tier: str = "auto") -> SharedArenaView | None:
    """Best-effort attach: ``None`` instead of raising on any mismatch.

    The worker-side entry point — a missing segment, an epoch mismatch,
    or a truncated mapping all mean "pack your own arena", never a
    failed worker.
    """
    try:
        return attach_view(spec, ontology, dewey=dewey, cache=cache,
                           cache_entries=cache_entries,
                           kernel_tier=kernel_tier)
    except ArenaSnapshotError:
        return None


_tracker_lock = threading.Lock()
"""Serializes the resource-tracker patch in :func:`attach_view`."""


def _no_register(name: str, rtype: str) -> None:
    """Registration suppressor installed while attaching (see
    :func:`attach_view`); matches ``resource_tracker.register``."""
