"""Radix DAG over Dewey path addresses (Section 3.1, Figure 4).

A Radix DAG compactly indexes a set of Dewey addresses: chains of ontology
nodes that carry no indexed concept and no branch are merged into single
edges whose labels are the concatenated Dewey components (so an edge label
of length ``L`` spans ``L`` ontology levels).  Because the underlying
ontology is a DAG, a concept can be reached through several addresses and
therefore appears as a *single* node with several incoming edges — the
structure is a DAG of its own, not a tree.

The insertion machinery below is the paper's Function *InsertPath* with
two engineering refinements, both exercised by the paper's own Example 2
trace (reproduced verbatim in the tests):

* node identity goes through a registry keyed by the resolved concept id
  (the paper's ``FindNodeByDewey``), so an address discovered later through
  a different parent reuses the existing node (Example 2, steps 6 and 8);
* after splitting an edge at a longest-common-prefix node, insertion
  *continues the walk from that node* instead of blindly attaching the
  remaining suffix.  On the paper's inputs this behaves identically (the
  remaining suffix either attaches fresh or already exists, and duplicate
  edges are suppressed), but it also stays correct when the LCP node —
  reused from the registry — already has children overlapping the suffix.

Addresses must be inserted in lexicographic order for the classic radix
invariants to hold; :class:`RadixDAG.from_addresses` sorts for you, and the
DRC algorithm produces lexicographically merged lists by construction.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.exceptions import InvariantError
from repro.ontology.graph import Ontology
from repro.types import ConceptId, DeweyAddress, common_prefix_length, format_dewey


class RadixNode:
    """A node of a Radix/D-Radix DAG.

    Attributes
    ----------
    concept_id:
        The ontology concept this node stands for.  Every radix node —
        including split points — corresponds to a real concept, because
        every full prefix of a Dewey address resolves to one.
    children:
        List of ``(label, child)`` pairs; labels are Dewey component
        tuples.  At most one child edge starts with any given component,
        and parallel edges to the same child with different labels are
        legal (two distinct ontology paths of different shape).
    is_target:
        True if this node was explicitly inserted (it represents a concept
        of the indexed set, not just a branch point).
    dist:
        Mutable two-slot distance annotation used by the D-Radix
        (``[nearest-document, nearest-query]``); plain radix usage leaves
        it untouched.
    """

    __slots__ = ("concept_id", "children", "index", "is_target", "dist")

    def __init__(self, concept_id: ConceptId) -> None:
        self.concept_id = concept_id
        self.children: list[tuple[DeweyAddress, "RadixNode"]] = []
        # First label component -> position in ``children``.  The radix
        # invariant guarantees at most one child edge per first component,
        # so edge matching during insertion is a dict lookup.
        self.index: dict[int, int] = {}
        self.is_target = False
        self.dist: list[float] = [0.0, 0.0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RadixNode {self.concept_id!r}>"


class RadixDAG:
    """A Radix DAG indexing a set of (address, concept) pairs.

    Parameters
    ----------
    ontology:
        Used to resolve split addresses back to concept ids
        (``FindNodeByDewey``); the root node is the ontology root.
    on_create:
        Optional hook invoked with each newly created :class:`RadixNode`
        (the D-Radix uses it to initialize distance annotations).
    """

    def __init__(self, ontology: Ontology, *,
                 on_create: "Callable[[RadixNode], None] | None" = None,
                 ) -> None:
        self._ontology = ontology
        self._on_create = on_create
        self._nodes: dict[ConceptId, RadixNode] = {}
        self.root = self._ensure_node(ontology.root)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_addresses(
        cls, ontology: Ontology,
        pairs: Iterable[tuple[DeweyAddress, ConceptId]],
    ) -> "RadixDAG":
        """Build a radix DAG from (address, concept) pairs in one call."""
        dag = cls(ontology)
        for address, concept_id in sorted(pairs, key=lambda pair: pair[0]):
            dag.insert(address, concept_id)
        return dag

    def _ensure_node(self, concept_id: ConceptId) -> RadixNode:
        node = self._nodes.get(concept_id)
        if node is None:
            node = RadixNode(concept_id)
            self._nodes[concept_id] = node
            if self._on_create is not None:
                self._on_create(node)
        return node

    def insert(self, address: DeweyAddress, concept_id: ConceptId) -> None:
        """Insert one Dewey address of ``concept_id`` (Function InsertPath).

        Must be called in lexicographic address order relative to previous
        insertions.
        """
        if not address:
            # The root's own (empty) address: mark it as a target.
            self.root.is_target = True
            return
        self._attach(self.root, (), address, None, concept_id)

    def _attach(self, start: RadixNode, start_address: DeweyAddress,
                suffix: DeweyAddress, subtree: RadixNode | None,
                concept_id: ConceptId | None) -> None:
        """Walk from ``start`` consuming ``suffix``; attach at the end.

        Two modes share this walk: a fresh concept insertion
        (``concept_id`` given) and the reattachment of an existing edge's
        subtree after a split (``subtree`` given).  Reattachment through
        the full walk — rather than a blind ``addChild`` as in the paper's
        pseudocode — keeps the one-edge-per-first-component invariant even
        when the registry-reused LCP node already has overlapping edges.
        """
        current = start
        matched = start_address
        remaining = suffix
        while True:
            position = current.index.get(remaining[0])
            if position is None:
                # No child shares the first component: attach directly.
                target = subtree
                if target is None:
                    target = self._ensure_node(concept_id)
                    target.is_target = True
                current.index[remaining[0]] = len(current.children)
                current.children.append((remaining, target))
                return
            label, child = current.children[position]
            lcp = common_prefix_length(remaining, label)
            if lcp == len(label):
                if lcp == len(remaining):
                    # Fully matched: the node at this address exists.
                    if subtree is None:
                        child.is_target = True
                    elif subtree is not child:
                        raise InvariantError(
                            "registry must deduplicate radix nodes")
                    return
                matched = matched + label
                remaining = remaining[lcp:]
                current = child
                continue
            # Partial overlap: split the edge at the LCP node.
            lcp_address = matched + remaining[:lcp]
            lcp_concept = self._ontology.resolve_dewey(lcp_address)
            lcp_node = self._ensure_node(lcp_concept)
            current.children[position] = (remaining[:lcp], lcp_node)
            self._attach(lcp_node, lcp_address, label[lcp:], child, None)
            matched = lcp_address
            remaining = remaining[lcp:]
            current = lcp_node
            if not remaining:
                # The inserted address denotes the LCP node itself.
                if subtree is None:
                    lcp_node.is_target = True
                elif subtree is not lcp_node:
                    raise InvariantError(
                        "registry must deduplicate radix nodes")
                return

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def node(self, concept_id: ConceptId) -> RadixNode:
        """The node for a concept (KeyError if absent)."""
        return self._nodes[concept_id]

    def __contains__(self, concept_id: object) -> bool:
        return concept_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[RadixNode]:
        """All nodes, in creation order."""
        return iter(self._nodes.values())

    def targets(self) -> Iterator[RadixNode]:
        """Nodes that were explicitly inserted (document/query concepts)."""
        return (node for node in self._nodes.values() if node.is_target)

    def edges(self) -> set[tuple[ConceptId, str, ConceptId]]:
        """The edge set as ``(parent, dotted-label, child)`` triples.

        A set-valued snapshot used by structural tests (e.g. checking the
        Figure 4 / Figure 5 shapes step by step).
        """
        result: set[tuple[ConceptId, str, ConceptId]] = set()
        for node in self._nodes.values():
            for label, child in node.children:
                result.add((node.concept_id, format_dewey(label),
                            child.concept_id))
        return result

    def topological_order(self) -> list[RadixNode]:
        """Nodes in a parents-before-children order.

        Used by the DRC tuning sweeps: iterate forward for the top-down
        pass, backward for the bottom-up pass.
        """
        indegree: dict[int, int] = {id(node): 0 for node in self._nodes.values()}
        for node in self._nodes.values():
            for _label, child in node.children:
                indegree[id(child)] += 1
        order: list[RadixNode] = []
        stack = [node for node in self._nodes.values()
                 if indegree[id(node)] == 0]
        while stack:
            node = stack.pop()
            order.append(node)
            for _label, child in node.children:
                indegree[id(child)] -= 1
                if indegree[id(child)] == 0:
                    stack.append(child)
        return order
