"""Packed Dewey arena + shared concept-distance cache (the hot-path kernels).

Every distance the paper computes — Eq. 1/2/3 and the D-Radix identity
``|p1| + |p2| - 2 * |LCP|`` — bottoms out in tuple-of-int Dewey addresses
allocated per query, and kNDS re-derives the same concept-pair distances
for every candidate document in every round.  This module removes both
costs without changing a single result:

* :class:`PackedDeweyArena` interns every concept's Dewey addresses
  *once* into flat ``array('I')`` buffers with per-concept offsets and
  small-int concept ids.  The LCP kernel then walks raw array indices —
  zero per-query tuple allocation — and the minimum over address pairs
  is exactly the valid-path concept distance (the address-closure
  property of :mod:`repro.ontology.dewey`), so arena answers are
  bit-for-bit equal to the tuple path.
* :class:`ConceptDistanceCache` memoizes the symmetric concept-pair
  distances behind a bounded, epoch-invalidated LRU shared across
  queries and serve workers — the precomputation-free analogue of the
  memoized structures in Bhattacharya & Bhowmick's follow-up work.

Exactness contract: ``doc_query_distance`` / ``doc_doc_distance`` return
the same floats as :class:`repro.core.drc.DRC` and the pairwise baseline.
All intermediate sums are small integers (exactly representable), and the
final divisions use the same numerators and denominators as the D-Radix
path, so equality is exact, not approximate (see
``tests/core/test_arena.py``).

Invalidation contract: concept distances depend only on the ontology,
never on the corpus, so ``SearchEngine.add_document`` does *not* flush
the cache.  Rebuilding the ontology means building a new arena; handing a
previously used :class:`ConceptDistanceCache` to a new arena flushes it
(interned id spaces differ between arenas), and :meth:`invalidate`
flushes explicitly and advances the epoch that serve-layer cache keys
embed.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from collections.abc import Collection, Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import os

from repro.exceptions import (EmptyDocumentError, ReproError,
                              UnknownConceptError)
from repro.obs.tracing import NULL_TRACER, NullTracer, Tracer
from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology
from repro.types import ConceptId

if TYPE_CHECKING:
    from repro.core.npkernel import NumpyBatchKernel
    from repro.obs import Observability
    from repro.obs.metrics import Counter

KERNEL_TIERS = ("auto", "packed", "numpy")
"""Accepted ``kernel_tier`` arguments (the arena rungs of the ladder).

The full kernel ladder is tuple → packed → numpy: the *tuple* rung is
:class:`repro.core.drc.DRC` with ``KNDSConfig.use_arena=False`` (no
arena at all), so the arena itself only distinguishes ``packed`` (the
scalar buffer-walking kernel) from ``numpy`` (the vectorized batch
kernel of :mod:`repro.core.npkernel`).  ``auto`` resolves to ``numpy``
when numpy is importable (the ``perf`` extra), else ``packed``; the
``REPRO_KERNEL_TIER`` environment variable overrides ``auto`` for
operator control without code changes.
"""

DEFAULT_CACHE_ENTRIES = 1 << 18
"""Default LRU capacity of the shared concept-distance cache.

Entries are ``(int, int) -> int`` — a few dozen bytes each — so the
default caps the cache in the tens of megabytes while covering every
pair a realistic serve workload touches between corpus deployments.
"""


@dataclass
class ArenaCacheStats:
    """Cumulative effectiveness counters of one :class:`ConceptDistanceCache`.

    ``invalidations`` counts :meth:`ConceptDistanceCache.invalidate`
    events (each drops *all* entries), not individual dropped entries.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from cache (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0


class ConceptDistanceCache:
    """Bounded, epoch-invalidated LRU over symmetric concept-id pairs.

    Keys are unordered pairs of *interned* concept ids (the arena's
    small ints), normalized to ``(min, max)`` so both orientations share
    one entry.  The cache is thread-safe (one lock around the ordered
    dict) and shared: one engine's kNDS settles, its DRC facade, the
    pairwise baseline and every serve worker all read and write the same
    entries, so a pair computed for one query is free for the next.

    ``max_entries=0`` disables the cache (every ``get`` misses, ``put``
    is a no-op) without callers having to special-case it.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[int, int], int] = \
            OrderedDict()  # guarded by: _lock
        self._lock = threading.Lock()
        self._epoch = 0  # guarded by: _lock (writes)
        self.stats = ArenaCacheStats()

    @property
    def epoch(self) -> int:
        """Invalidation generation: bumped by every :meth:`invalidate`."""
        return self._epoch

    def get(self, first: int, second: int) -> int | None:
        """Cached distance for the unordered id pair, or ``None``.

        A hit refreshes the entry's LRU position.
        """
        if first > second:
            first, second = second, first
        key = (first, second)
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, first: int, second: int, distance: int) -> None:
        """Store the distance for the unordered id pair (LRU-bounded)."""
        if self.max_entries == 0:
            return
        if first > second:
            first, second = second, first
        key = (first, second)
        with self._lock:
            self._entries[key] = distance
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> None:
        """Drop every entry and advance the epoch.

        Called when the interned-id space changes meaning: an arena
        :meth:`PackedDeweyArena.invalidate` or a new arena adopting this
        cache after an ontology rebuild.  Corpus mutations never call
        this — concept distances do not depend on documents.
        """
        with self._lock:
            self._entries.clear()
            self._epoch += 1
            self.stats.invalidations += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


class PackedDeweyArena:
    """Ontology-scoped packed address arena with LCP-accelerated kernels.

    Layout (three flat buffers, appended to as concepts are interned):

    * ``_data`` — ``array('I')`` of address components, all addresses of
      all interned concepts concatenated;
    * ``_bounds`` — address-slot offsets into ``_data``: address slot
      ``s`` spans ``_data[_bounds[s]:_bounds[s+1]]``;
    * ``_slots`` — per-concept slot ranges: concept id ``c`` owns
      address slots ``_slots[c]`` … ``_slots[c+1]-1``.

    Interning is lazy (first touch packs the concept's Dewey addresses
    from the shared :class:`~repro.ontology.dewey.DeweyIndex`) and
    append-only, so readers never see a moved offset.  Concept ids are
    dense small ints in interning order; they are private to one arena
    and one epoch — result caches embedding them must also embed
    :attr:`epoch` (see :meth:`cache_token`).

    Parameters
    ----------
    ontology:
        The validated concept DAG the addresses come from.
    dewey:
        Optional shared address index (avoids recomputing memoized
        addresses the DRC tuple path already derived).
    cache:
        An existing :class:`ConceptDistanceCache` to adopt.  A non-empty
        cache is flushed on adoption: its entries were keyed by another
        arena's id space.
    cache_entries:
        LRU capacity when the arena builds its own cache.
    kernel_tier:
        ``"auto"`` (default), ``"packed"``, or ``"numpy"`` — see
        :data:`KERNEL_TIERS`.  ``"numpy"`` raises
        :class:`repro.exceptions.ReproError` when numpy is not
        installed (``pip install repro[perf]``); ``"auto"`` silently
        stays on the packed scalar kernel instead.
    """

    def __init__(self, ontology: Ontology, dewey: DeweyIndex | None = None,
                 *, cache: ConceptDistanceCache | None = None,
                 cache_entries: int = DEFAULT_CACHE_ENTRIES,
                 kernel_tier: str = "auto") -> None:
        self.ontology = ontology
        self.dewey = dewey if dewey is not None else DeweyIndex(ontology)
        if cache is None:
            cache = ConceptDistanceCache(cache_entries)
        elif len(cache):
            cache.invalidate()
        self.cache = cache
        # The packed buffers are append-only within an epoch: mutation
        # happens under _intern_lock, readers take a lock-free snapshot
        # of a prefix that never changes once written.
        self._data: array[int] = array("I")  # guarded by: _intern_lock (writes)
        self._bounds: array[int] = array("I", [0])  # guarded by: _intern_lock (writes)
        self._slots: array[int] = array("I", [0])  # guarded by: _intern_lock (writes)
        self._ids: dict[ConceptId, int] = {}  # guarded by: _intern_lock (writes)
        self._concepts: list[ConceptId] = []  # guarded by: _intern_lock (writes)
        self._epoch = 0  # guarded by: _intern_lock (writes)
        self._intern_lock = threading.Lock()
        self.pair_lookups = 0
        """Concept-pair distance requests answered (cache hits included).

        Deliberately lock-free: bumped on the distance hot path from
        many threads, tolerated-racy (a lost increment skews a counter,
        never a result), delta-published via ``_sync_metrics``.
        """
        self.pair_kernels = 0
        """LCP kernel evaluations (pair requests that missed).

        Same tolerated-racy discipline as :attr:`pair_lookups`.  Batch
        calls are batch-aware: one :meth:`batch_pair_distances` call
        bumps this by the number of missing pairs, exactly matching the
        scalar path, so the count is identical across kernel tiers and
        the bench work-counter gate never flaps on tier choice.
        """
        self.kernel_calls = 0
        """Python-level kernel invocations (tier-dependent, ungated).

        On the packed tier this equals :attr:`pair_kernels` (one
        interpreted kernel walk per missing pair); on the numpy tier one
        vectorized call covers a whole batch of misses, so this counter
        is the direct measure of the interpreter work the batch kernel
        removes.  Deliberately *not* a bench work counter — it is meant
        to differ across tiers.
        """
        self._np_kernel: "NumpyBatchKernel | None" = \
            self._resolve_kernel(kernel_tier)
        self._counters: "tuple[Counter, ...] | None" = None  # guarded by: _metrics_lock (writes)
        self._tracer: "Tracer | NullTracer | None" = None
        self._published = [0, 0, 0, 0, 0, 0]  # guarded by: _metrics_lock
        self._metrics_lock = threading.Lock()

    @staticmethod
    def _resolve_kernel(kernel_tier: str) -> "NumpyBatchKernel | None":
        """Resolve a tier request to a batch kernel (or None for packed)."""
        if kernel_tier not in KERNEL_TIERS:
            raise ReproError(
                f"kernel_tier must be one of {', '.join(KERNEL_TIERS)}, "
                f"got {kernel_tier!r}")
        if kernel_tier == "auto":
            kernel_tier = os.environ.get("REPRO_KERNEL_TIER", "auto")
            if kernel_tier not in KERNEL_TIERS:
                raise ReproError(
                    f"REPRO_KERNEL_TIER must be one of "
                    f"{', '.join(KERNEL_TIERS)}, got {kernel_tier!r}")
        if kernel_tier == "packed":
            return None
        from repro.core import npkernel
        if not npkernel.available():
            if kernel_tier == "numpy":
                raise ReproError(
                    "kernel_tier='numpy' requires numpy; install the "
                    "perf extra (pip install repro[perf])")
            return None
        return npkernel.NumpyBatchKernel()

    @property
    def kernel_tier(self) -> str:
        """The active kernel tier of this arena: packed or numpy."""
        return "numpy" if self._np_kernel is not None else "packed"

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Arena generation; bumped by :meth:`invalidate`.

        Interned ids are only comparable within one epoch, so anything
        that persists them (the serve result cache) embeds this value.
        """
        return self._epoch

    @property
    def interned(self) -> int:
        """Number of concepts packed so far."""
        return len(self._concepts)

    def buffer_bytes(self) -> int:
        """Bytes held by the three packed buffers.

        The ``resource.arena_bytes`` gauge; grows monotonically within an
        epoch (interning is append-only) and resets on :meth:`invalidate`.
        """
        return (len(self._data) * self._data.itemsize
                + len(self._bounds) * self._bounds.itemsize
                + len(self._slots) * self._slots.itemsize)

    def concept_id(self, concept: ConceptId) -> int:
        """The interned small-int id of ``concept`` (packing on first use).

        Raises :class:`repro.exceptions.UnknownConceptError` for concepts
        outside the ontology.
        """
        cid = self._ids.get(concept)
        if cid is not None:
            return cid
        return self._intern(concept)

    def _intern(self, concept: ConceptId) -> int:
        with self._intern_lock:
            cid = self._ids.get(concept)
            if cid is not None:
                return cid
            if concept not in self.ontology:
                raise UnknownConceptError(concept)
            addresses = self.dewey.addresses(concept)
            data = self._data
            bounds = self._bounds
            for address in addresses:
                data.extend(address)
                bounds.append(len(data))
            self._slots.append(len(bounds) - 1)
            cid = len(self._concepts)
            self._concepts.append(concept)
            self._ids[concept] = cid
            return cid

    def intern_unique(self, concepts: Iterable[ConceptId]) -> list[int]:
        """Interned ids for a concept set, deduplicated, order preserved.

        Deduplication matches the ``frozenset`` semantics of the D-Radix
        tuple path, keeping the distance kernels bit-for-bit equal on
        inputs with repeated concepts.
        """
        ids = self._ids
        out: list[int] = []
        for concept in dict.fromkeys(concepts):
            cid = ids.get(concept)
            out.append(cid if cid is not None else self._intern(concept))
        return out

    def cache_token(self, concepts: Iterable[ConceptId]
                    ) -> tuple[int, ...] | None:
        """Epoch-prefixed, sorted interned ids for result-cache keys.

        The serve layer keys its result cache on this instead of
        re-sorting concept strings per lookup: ``(epoch, id, id, ...)``
        with ids sorted and deduplicated.  Returns ``None`` when any
        concept is unknown to the ontology, so callers can fall back to
        string keys and let query validation raise the real error.
        """
        ids = self._ids
        out: list[int] = []
        for concept in concepts:
            cid = ids.get(concept)
            if cid is None:
                if concept not in self.ontology:
                    return None
                cid = self._intern(concept)
            out.append(cid)
        out = sorted(set(out))
        return (self._epoch, *out)

    def invalidate(self) -> None:
        """Reset the arena: drop all packed state, flush the cache.

        Advances :attr:`epoch` so any persisted interned ids (serve
        cache keys via :meth:`cache_token`) stop matching.  Use after an
        ontology rebuild when reusing the arena object in place;
        building a fresh arena is equivalent.
        """
        with self._intern_lock:
            self._data = array("I")
            self._bounds = array("I", [0])
            self._slots = array("I", [0])
            self._ids = {}
            self._concepts = []
            self._epoch += 1
        self.cache.invalidate()

    # ------------------------------------------------------------------
    # Distance kernels (interned-id form: the hot path)
    # ------------------------------------------------------------------
    def pair_distance(self, first: int, second: int) -> int:
        """Exact valid-path distance between two interned concepts.

        Consults the shared :class:`ConceptDistanceCache` first; a miss
        runs the packed LCP kernel (minimum of the Dewey-pair identity
        over all address pairs) and stores the result.
        """
        if first == second:
            return 0
        self.pair_lookups += 1
        cached = self.cache.get(first, second)
        if cached is not None:
            return cached
        distance = self._pair_kernel(first, second)
        self.pair_kernels += 1
        self.kernel_calls += 1
        self.cache.put(first, second, distance)
        return distance

    def batch_pair_distances(
            self, pairs: Sequence[tuple[int, int]]) -> list[int]:
        """Exact distances for many interned-id pairs in one call.

        The batch analogue of :meth:`pair_distance` and the entry point
        of the vectorized kernel tier: cache hits are served per pair,
        all misses are evaluated in one kernel invocation (vectorized on
        the numpy tier), and every counter — ``pair_lookups``,
        ``pair_kernels``, cache hit/miss — advances by exactly what the
        equivalent scalar loop would have produced, so work gating stays
        deterministic across tiers.
        """
        distances = self._resolve_pairs(list(pairs))
        self._sync_metrics()
        return distances

    def _resolve_pairs(self, pairs: Sequence[tuple[int, int]]) -> list[int]:
        """Cache-aware batched pair resolution (scalar-exact counters).

        Counter parity with the per-pair scalar loop is maintained
        case by case: equal-id pairs short-circuit to 0 without touching
        any counter; cache hits and first-miss kernel evaluations map
        one to one; a pair repeated within the batch defers its cache
        read until after the first occurrence's ``put``, registering the
        same hit the interleaved scalar loop would.  With a disabled
        cache (``max_entries=0``) every occurrence re-runs the kernel,
        again exactly like the scalar loop.  (Only an LRU already *at
        capacity mid-batch* can make hit/miss counts drift from the
        scalar interleaving; the shipped capacities make that window
        unreachable in gated workloads.)
        """
        out = [0] * len(pairs)
        cache = self.cache
        lookups = 0
        if cache.max_entries == 0:
            misses: list[tuple[int, tuple[int, int]]] = []
            for index, (first, second) in enumerate(pairs):
                if first == second:
                    continue
                lookups += 1
                cache.get(first, second)  # always misses; stats parity
                misses.append((index, (first, second)))
            self.pair_lookups += lookups
            if misses:
                values = self._kernel_many([key for _, key in misses])
                self.pair_kernels += len(misses)
                for (index, _key), value in zip(misses, values):
                    out[index] = value
            return out
        pending: "OrderedDict[tuple[int, int], list[int]]" = OrderedDict()
        for index, (first, second) in enumerate(pairs):
            if first == second:
                continue
            lookups += 1
            key = (first, second) if first < second else (second, first)
            occurrences = pending.get(key)
            if occurrences is not None:
                occurrences.append(index)
                continue
            cached = cache.get(first, second)
            if cached is not None:
                out[index] = cached
                continue
            pending[key] = [index]
        self.pair_lookups += lookups
        if pending:
            keys = list(pending)
            values = self._kernel_many(keys)
            self.pair_kernels += len(keys)
            for key, value in zip(keys, values):
                cache.put(key[0], key[1], value)
                occurrences = pending[key]
                out[occurrences[0]] = value
                for duplicate in occurrences[1:]:
                    # The scalar loop's later occurrence hits the entry
                    # the first one just stored; re-reading registers
                    # the same hit (and LRU refresh) here.
                    hit = cache.get(key[0], key[1])
                    out[duplicate] = value if hit is None else hit
        return out

    def _kernel_many(self, keys: Sequence[tuple[int, int]]) -> list[int]:
        """Kernel-evaluate a list of missing pairs on the active tier."""
        kernel = self._np_kernel
        if kernel is not None:
            values = kernel.distances(self, keys)
            self.kernel_calls += 1
            return values
        self.kernel_calls += len(keys)
        return [self._pair_kernel(first, second) for first, second in keys]

    def _pair_kernel(self, first: int, second: int) -> int:
        # min over address pairs of |p1| + |p2| - 2*LCP, walked directly
        # on the packed buffers.  Distinct concepts never share an
        # address and any valid path has length >= 1, so 1 is a floor
        # that justifies the early exit.
        data = self._data
        bounds = self._bounds
        slots = self._slots
        best = -1
        for slot_a in range(slots[first], slots[first + 1]):
            start_a = bounds[slot_a]
            len_a = bounds[slot_a + 1] - start_a
            for slot_b in range(slots[second], slots[second + 1]):
                start_b = bounds[slot_b]
                len_b = bounds[slot_b + 1] - start_b
                limit = len_a if len_a < len_b else len_b
                lcp = 0
                while lcp < limit \
                        and data[start_a + lcp] == data[start_b + lcp]:
                    lcp += 1
                distance = len_a + len_b - 2 * lcp
                if best < 0 or distance < best:
                    if distance <= 1:
                        return distance
                    best = distance
        return best

    def doc_concept_distance(self, doc_ids: Sequence[int],
                             concept: int) -> int:
        """Min distance from one interned concept to an interned doc set.

        This is the inner term of Eq. 2 (and of both direction minima of
        Eq. 3): ``min over d in doc of dist(d, concept)``.
        """
        best = -1
        for doc_concept in doc_ids:
            distance = self.pair_distance(doc_concept, concept)
            if best < 0 or distance < best:
                if distance == 0:
                    return 0
                best = distance
        if best < 0:
            raise EmptyDocumentError("<document>")
        return best

    def ddq_ids(self, doc_ids: Sequence[int],
                query_ids: Sequence[int]) -> float:
        """``Ddq`` (Eq. 2) over interned, deduplicated id sequences."""
        if not doc_ids:
            raise EmptyDocumentError("<document>")
        if not query_ids:
            raise EmptyDocumentError("<query>")
        if self._np_kernel is not None:
            return self._ddq_ids_batch(doc_ids, query_ids)
        total = 0
        for query_concept in query_ids:
            total += self.doc_concept_distance(doc_ids, query_concept)
        self._sync_metrics()
        return float(total)

    def _ddq_ids_batch(self, doc_ids: Sequence[int],
                       query_ids: Sequence[int]) -> float:
        """``Ddq`` via one batched pair resolution (numpy tier).

        Counter parity requires replicating the scalar early exit: the
        per-query inner loop stops at distance 0, which (distinct
        concepts never being at distance 0) happens exactly when the
        query concept appears in the document set — so the pairs the
        scalar loop evaluates are known up front without computing any
        distance.
        """
        positions: dict[int, int] = {}
        for row, concept in enumerate(doc_ids):
            if concept not in positions:
                positions[concept] = row
        pairs: list[tuple[int, int]] = []
        spans: list[tuple[int, int, bool]] = []
        for query_concept in query_ids:
            start = len(pairs)
            stop_row = positions.get(query_concept)
            matched = stop_row is not None
            limit = len(doc_ids) if stop_row is None else stop_row
            for row in range(limit):
                pairs.append((doc_ids[row], query_concept))
            spans.append((start, len(pairs), matched))
        distances = self._resolve_pairs(pairs)
        total = 0
        for start, stop, matched in spans:
            if not matched:
                total += min(distances[start:stop])
        self._sync_metrics()
        return float(total)

    def ddd_ids(self, doc_ids: Sequence[int],
                query_ids: Sequence[int]) -> float:
        """``Ddd`` (Eq. 3) over interned, deduplicated id sequences.

        One pass over the pair matrix feeds both direction minima, and
        the two normalized sums use the same integer numerators and
        denominators as the D-Radix path, so the float result is
        identical.
        """
        if not doc_ids:
            raise EmptyDocumentError("<document>")
        if not query_ids:
            raise EmptyDocumentError("<query>")
        if self._np_kernel is not None:
            return self._ddd_ids_batch(doc_ids, query_ids)
        doc_minima = [-1] * len(doc_ids)
        query_total = 0
        for query_concept in query_ids:
            best = -1
            for row, doc_concept in enumerate(doc_ids):
                distance = self.pair_distance(doc_concept, query_concept)
                if best < 0 or distance < best:
                    best = distance
                if doc_minima[row] < 0 or distance < doc_minima[row]:
                    doc_minima[row] = distance
            query_total += best
        self._sync_metrics()
        return (sum(doc_minima) / len(doc_ids)
                + query_total / len(query_ids))

    def _ddd_ids_batch(self, doc_ids: Sequence[int],
                       query_ids: Sequence[int]) -> float:
        """``Ddd`` via one batched pair resolution (numpy tier).

        The scalar pass walks the full pair matrix (no early exit), so
        the batch simply requests every pair in the same order and folds
        the same integer minima; the two normalized sums use identical
        numerators and denominators, keeping the float bit-for-bit.
        """
        pairs = [(doc_concept, query_concept)
                 for query_concept in query_ids
                 for doc_concept in doc_ids]
        distances = self._resolve_pairs(pairs)
        doc_minima = [-1] * len(doc_ids)
        query_total = 0
        position = 0
        for _query_concept in query_ids:
            best = -1
            for row in range(len(doc_ids)):
                distance = distances[position]
                position += 1
                if best < 0 or distance < best:
                    best = distance
                if doc_minima[row] < 0 or distance < doc_minima[row]:
                    doc_minima[row] = distance
            query_total += best
        self._sync_metrics()
        return (sum(doc_minima) / len(doc_ids)
                + query_total / len(query_ids))

    # ------------------------------------------------------------------
    # Distance facades (raw concept-id form)
    # ------------------------------------------------------------------
    def concept_pair_distance(self, first: ConceptId,
                              second: ConceptId) -> int:
        """Exact concept-pair distance by raw concept id (Eq. 1 input)."""
        distance = self.pair_distance(self.concept_id(first),
                                      self.concept_id(second))
        self._sync_metrics()
        return distance

    def doc_query_distance(self, doc_concepts: Collection[ConceptId],
                           query_concepts: Collection[ConceptId]) -> float:
        """``Ddq(d, q)`` for raw concept sets (interns on first touch)."""
        return self.ddq_ids(self.intern_unique(doc_concepts),
                            self.intern_unique(query_concepts))

    def doc_doc_distance(self, doc_concepts: Collection[ConceptId],
                         query_concepts: Collection[ConceptId]) -> float:
        """``Ddd(d, dq)`` for raw concept sets (interns on first touch)."""
        return self.ddd_ids(self.intern_unique(doc_concepts),
                            self.intern_unique(query_concepts))

    def batch_ddq(self, docs: Sequence[Collection[ConceptId]],
                  query_concepts: Collection[ConceptId]) -> list[float]:
        """``Ddq`` of one query against many documents.

        Interns the query once and streams the documents through the
        shared cache — the kernel behind the batch query API
        (:meth:`repro.core.engine.SearchEngine.rds_many`).  One span
        covers the whole batch (per-document spans would dominate the
        packed kernel itself).
        """
        tracer = self._tracer if self._tracer is not None else NULL_TRACER
        with tracer.span("arena.batch_ddq", docs=len(docs)):
            query_ids = self.intern_unique(query_concepts)
            return [self.ddq_ids(self.intern_unique(doc), query_ids)
                    for doc in docs]

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def instrument(self, obs: "Observability | None") -> None:
        """Attach an :class:`repro.obs.Observability` bundle (or ``None``).

        Pre-creates the ``arena.*`` counters (``arena.pair_lookups``,
        ``arena.pair_kernels``, ``arena.cache.hit``, ``arena.cache.miss``,
        ``arena.cache.evict``) and re-baselines publication so the new
        registry only sees activity from this point on — the contract the
        bench runner's untimed metrics pass relies on.
        """
        if obs is None:
            with self._metrics_lock:
                self._counters = None
            self._tracer = None
            return
        self._tracer = obs.tracer
        registry = obs.metrics
        counters = (
            registry.counter("arena.pair_lookups",
                             "Concept-pair distances served by the arena"),
            registry.counter("arena.pair_kernels",
                             "Packed LCP kernel evaluations (cache misses)"),
            registry.counter("arena.cache.hit",
                             "Concept-distance cache hits"),
            registry.counter("arena.cache.miss",
                             "Concept-distance cache misses"),
            registry.counter("arena.cache.evict",
                             "Concept-distance cache LRU evictions"),
            registry.counter("arena.kernel_calls",
                             "Python-level kernel invocations (one per "
                             "missing pair on the packed tier, one per "
                             "batch on the numpy tier)"),
        )
        stats = self.cache.stats
        with self._metrics_lock:
            self._published = [self.pair_lookups, self.pair_kernels,
                               stats.hits, stats.misses, stats.evictions,
                               self.kernel_calls]
            self._counters = counters

    def reset_counters(self) -> None:
        """Zero the arena counters (benchmark harness hygiene)."""
        self.pair_lookups = 0
        self.pair_kernels = 0
        self.kernel_calls = 0
        stats = self.cache.stats
        with self._metrics_lock:
            self._published = [0, 0, stats.hits, stats.misses,
                               stats.evictions, 0]

    def _sync_metrics(self) -> None:
        counters = self._counters
        if counters is None:
            return
        stats = self.cache.stats
        totals = (self.pair_lookups, self.pair_kernels,
                  stats.hits, stats.misses, stats.evictions,
                  self.kernel_calls)
        with self._metrics_lock:
            published = self._published
            for index, counter in enumerate(counters):
                delta = totals[index] - published[index]
                if delta > 0:
                    counter.inc(delta)
                    published[index] = totals[index]
