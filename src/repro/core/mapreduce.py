"""kNDS as a MapReduce job (Section 6.1's scaling suggestion).

The paper bounds kNDS's memory with a 50K node-queue cap and remarks:
"In practice, the queue size limit can be eliminated by implementing
kNDS as a MapReduce job.  Each mapper would be responsible for one
iteration of the BFS traversal starting from one query node; reducers
would do the book-keeping and execute the distance calculation, if
needed."

This module implements exactly that decomposition on a small,
deterministic, in-process MapReduce runtime:

* :class:`MapReduceRuntime` — ``run(records, mapper, reducer)`` with a
  hash-partitioned shuffle.  Deterministic and dependency-free, so the
  *structure* of the distributed algorithm is testable.  This runtime is
  deliberately in-process and single-threaded: it models the paper's
  decomposition, not a deployment.  The repo's actual multi-process
  runtime is :mod:`repro.shard`, which partitions *documents* (not BFS
  frontiers) across worker processes and scatter-gathers whole top-k
  queries — see ``docs/SERVING.md`` ("Sharded deployment") for how the
  two decompositions relate.
* :class:`MapReduceKNDS` — the search driver.  Each round:

  1. **map** over per-origin frontier shards: advance that origin's BFS
     one level, emit ``(doc_id, (origin, concept, level))`` for every
     posting of every newly visited concept, and the next frontier;
  2. **reduce** by document: merge coverage into the per-document
     bookkeeping (the ``Md``/``M'd`` hashes);
  3. the driver updates bounds, runs the analysis phase (DRC probes
     gated by the error threshold) and checks the termination condition,
     exactly as in the serial algorithm.

Because every mapper holds only one origin's frontier for one level, no
single process ever materializes the combined queue — the cap becomes
unnecessary, which is the paper's point.  Results are bit-identical to
the serial :class:`repro.core.knds.KNDSearch` (asserted by tests).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.drc import DRC
from repro.core.knds import (
    KNDSConfig,
    _error_estimate,
    _RDSCandidate,
    _SDSCandidate,
    _validated_query,
)
from repro.core.results import QueryStats, RankedResults, ResultItem
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.index.base import ForwardIndexBase, InvertedIndexBase
from repro.index.memory import MemoryForwardIndex, MemoryInvertedIndex
from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology
from repro.types import ConceptId, DocId


@dataclass
class MapReduceStats:
    """Execution counters of the runtime."""

    map_invocations: int = 0
    reduce_invocations: int = 0
    shuffled_pairs: int = 0
    rounds: int = 0
    max_mapper_frontier: int = 0
    """Largest frontier any single mapper held — the per-process memory
    bound that replaces the serial algorithm's global queue cap."""


class MapReduceRuntime:
    """A deterministic in-process map-shuffle-reduce executor.

    ``num_partitions`` models the reducer parallelism; partitioning is by
    the builtin hash of the key modulo the partition count, and keys are
    processed in sorted order within each partition so results never
    depend on dict iteration order.
    """

    def __init__(self, num_partitions: int = 4) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.stats = MapReduceStats()

    def run(self, records: Iterable[Any],
            mapper: Callable[[Any], Iterable[tuple[Hashable, Any]]],
            reducer: Callable[[Hashable, list[Any]], Iterable[Any]],
            ) -> list[Any]:
        """One map-shuffle-reduce pass.

        ``mapper(record)`` yields ``(key, value)`` pairs;
        ``reducer(key, values)`` yields output records.
        """
        partitions: list[dict[Hashable, list[Any]]] = [
            {} for _ in range(self.num_partitions)
        ]
        for record in records:
            self.stats.map_invocations += 1
            for key, value in mapper(record):
                self.stats.shuffled_pairs += 1
                shard = partitions[hash(key) % self.num_partitions]
                shard.setdefault(key, []).append(value)
        output: list[Any] = []
        for shard in partitions:
            for key in sorted(shard, key=repr):
                self.stats.reduce_invocations += 1
                output.extend(reducer(key, shard[key]))
        return output


# ----------------------------------------------------------------------
# kNDS on the runtime
# ----------------------------------------------------------------------
_UP = 0
_DOWN = 1


@dataclass
class _FrontierShard:
    """One mapper's input: a single origin's BFS frontier for one level."""

    origin: ConceptId
    level: int
    states: list[tuple[ConceptId, int, ConceptId | None]]
    seen_up: set[ConceptId] = field(default_factory=set)
    seen_down: set[ConceptId] = field(default_factory=set)
    visited: set[ConceptId] = field(default_factory=set)


class MapReduceKNDS:
    """kNDS evaluated as per-round MapReduce jobs.

    The public API mirrors :class:`repro.core.knds.KNDSearch`; the
    ``queue_limit`` configuration field is ignored by design (no global
    queue exists to cap).
    """

    def __init__(self, ontology: Ontology,
                 collection: DocumentCollection | None = None, *,
                 inverted: InvertedIndexBase | None = None,
                 forward: ForwardIndexBase | None = None,
                 dewey: DeweyIndex | None = None,
                 drc: DRC | None = None,
                 runtime: MapReduceRuntime | None = None) -> None:
        if inverted is None or forward is None:
            if collection is None:
                raise ValueError(
                    "provide a collection or explicit inverted+forward "
                    "indexes")
            inverted = inverted or MemoryInvertedIndex.from_collection(
                collection, ontology=ontology)
            forward = forward or MemoryForwardIndex.from_collection(
                collection)
        self.ontology = ontology
        self.inverted = inverted
        self.forward = forward
        self.dewey = dewey or DeweyIndex(ontology)
        self.drc = drc or DRC(ontology, self.dewey)
        self.runtime = runtime or MapReduceRuntime()

    # ------------------------------------------------------------------
    def rds(self, query_concepts: Sequence[ConceptId], k: int,
            config: KNDSConfig | None = None) -> RankedResults:
        """Top-k RDS, evaluated round-by-round on the runtime."""
        query = _validated_query(self.ontology, tuple(query_concepts), k)
        items = self._search(query, k, "rds", config or KNDSConfig())
        return RankedResults(items, QueryStats(), algorithm="knds-mr",
                             query_kind="rds", k=k)

    def sds(self, query_document: Document | Sequence[ConceptId], k: int,
            config: KNDSConfig | None = None) -> RankedResults:
        """Top-k SDS, evaluated round-by-round on the runtime."""
        if isinstance(query_document, Document):
            concepts = query_document.require_concepts()
        else:
            concepts = tuple(query_document)
        query = _validated_query(self.ontology, concepts, k)
        items = self._search(query, k, "sds", config or KNDSConfig())
        return RankedResults(items, QueryStats(), algorithm="knds-mr",
                             query_kind="sds", k=k)

    # ------------------------------------------------------------------
    def _search(self, query: tuple[ConceptId, ...], k: int, mode: str,
                config: KNDSConfig) -> list[ResultItem]:
        num_query = len(query)
        shards = [
            _FrontierShard(origin, -1, [(origin, _UP, None)],
                           seen_up={origin})
            for origin in query
        ]
        candidates: dict[DocId, _RDSCandidate | _SDSCandidate] = {}
        closed: set[DocId] = set()
        top_heap: list[tuple[float, DocId]] = []
        level = -1

        while True:
            live_shards = [shard for shard in shards if shard.states]
            if live_shards:
                level += 1
                self.runtime.stats.rounds += 1
                updates = self.runtime.run(
                    live_shards, self._bfs_mapper, self._coverage_reducer)
                self._apply_updates(updates, mode, num_query, candidates,
                                    closed)
            exhausted = not any(shard.states for shard in shards)

            self._analyze(query, k, mode, num_query, level, exhausted,
                          candidates, closed, top_heap, config)

            kth = -top_heap[0][0] if len(top_heap) >= k else None
            lower = self._global_lower(candidates, level, num_query,
                                       exhausted, mode)
            if kth is not None and lower >= kth:
                break
            if exhausted and not candidates:
                break

        ranked = sorted(
            (ResultItem(doc_id, -negative) for negative, doc_id in top_heap),
            key=lambda item: (item.distance, item.doc_id),
        )
        return ranked

    # ------------------------------------------------------------------
    # Map phase: advance one origin's BFS a single level.
    # ------------------------------------------------------------------
    def _bfs_mapper(self, shard: _FrontierShard) -> Iterator[tuple]:
        ontology = self.ontology
        stats = self.runtime.stats
        stats.max_mapper_frontier = max(stats.max_mapper_frontier,
                                        len(shard.states))
        shard.level += 1
        next_states: list[tuple[ConceptId, int, ConceptId | None]] = []
        for concept, phase, predecessor in shard.states:
            if concept not in shard.visited:
                shard.visited.add(concept)
                for doc_id in self.inverted.postings(concept):
                    yield doc_id, (shard.origin, concept, shard.level)
            if phase == _UP:
                for parent in ontology.parents(concept):
                    if parent == predecessor or parent in shard.seen_up:
                        continue
                    shard.seen_up.add(parent)
                    next_states.append((parent, _UP, concept))
            for child in ontology.children(concept):
                if child == predecessor:
                    continue
                if child in shard.seen_down or child in shard.seen_up:
                    continue
                shard.seen_down.add(child)
                next_states.append((child, _DOWN, concept))
        shard.states = next_states

    # ------------------------------------------------------------------
    # Reduce phase: merge coverage per document.
    # ------------------------------------------------------------------
    @staticmethod
    def _coverage_reducer(doc_id: DocId,
                          values: list[tuple]) -> Iterator[tuple]:
        # Keep the minimum level per (origin, concept); BFS levels within
        # one round are equal, so min() is merely defensive.
        merged: dict[tuple[ConceptId, ConceptId], int] = {}
        for origin, concept, found_level in values:
            key = (origin, concept)
            if key not in merged or found_level < merged[key]:
                merged[key] = found_level
        yield doc_id, merged

    def _apply_updates(
            self,
            updates: list[tuple[DocId, dict[tuple[ConceptId, ConceptId], int]]],
            mode: str, num_query: int,
            candidates: dict[DocId, "_RDSCandidate | _SDSCandidate"],
            closed: set[DocId]) -> None:
        for doc_id, merged in updates:
            if doc_id in closed:
                continue
            candidate = candidates.get(doc_id)
            if candidate is None:
                if mode == "rds":
                    candidate = _RDSCandidate(doc_id)
                else:
                    candidate = _SDSCandidate(
                        doc_id, self.forward.concept_count(doc_id))
                candidates[doc_id] = candidate
            for (origin, concept), found_level in sorted(
                    merged.items(), key=lambda kv: kv[1]):
                candidate.note(origin, concept, found_level)

    # ------------------------------------------------------------------
    # Driver-side analysis and termination (identical logic to serial).
    # ------------------------------------------------------------------
    def _analyze(self, query: tuple[ConceptId, ...], k: int, mode: str,
                 num_query: int, level: int, exhausted: bool,
                 candidates: dict[DocId, "_RDSCandidate | _SDSCandidate"],
                 closed: set[DocId],
                 top_heap: list[tuple[float, DocId]], config: KNDSConfig) -> None:
        ordered = sorted(
            candidates.values(),
            key=lambda cand: (cand.lower(level, num_query), cand.doc_id),
        )
        budget = config.analyze_budget_per_round
        for candidate in ordered:
            if budget is not None and budget <= 0:
                break
            kth = -top_heap[0][0] if len(top_heap) >= k else None
            bound = candidate.lower(level, num_query)
            if kth is not None and bound >= kth:
                if config.prune_at_pop:
                    del candidates[candidate.doc_id]
                    closed.add(candidate.doc_id)
                    continue
            if not exhausted:
                error = _error_estimate(
                    candidate.partial(num_query), bound)
                if error > config.error_threshold:
                    break
            del candidates[candidate.doc_id]
            closed.add(candidate.doc_id)
            if config.covered_shortcut and candidate.fully_covered(
                    num_query):
                distance = candidate.partial(num_query)
            else:
                doc_concepts = self.forward.concepts(candidate.doc_id)
                if mode == "rds":
                    distance = self.drc.document_query_distance(
                        doc_concepts, query)
                else:
                    distance = self.drc.document_document_distance(
                        doc_concepts, query)
            if budget is not None:
                budget -= 1
            if len(top_heap) < k:
                heapq.heappush(top_heap, (-float(distance),
                                          candidate.doc_id))
            elif float(distance) < -top_heap[0][0]:
                heapq.heapreplace(top_heap, (-float(distance),
                                             candidate.doc_id))

    @staticmethod
    def _global_lower(candidates: dict[DocId, "_RDSCandidate | _SDSCandidate"],
                      level: int, num_query: int,
                      exhausted: bool, mode: str) -> float:
        best = min(
            (candidate.lower(level, num_query)
             for candidate in candidates.values()),
            default=float("inf"),
        )
        if not exhausted:
            unseen = (num_query * (level + 1) if mode == "rds"
                      else 2 * (level + 1))
            best = min(best, float(unseen))
        return best
