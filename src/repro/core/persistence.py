"""Whole-engine persistence: save and reload a search deployment.

Bundles the three artifacts a deployment needs — the ontology (SQLite),
the corpus (JSONL) and the SQLite corpus indexes — into one directory, so
an engine built once (possibly from licensed sources and a slow
extraction run) reloads in milliseconds:

    save_engine(engine, "deploy/")
    engine = load_engine("deploy/")
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.engine import SearchEngine
from repro.corpus.io import load_jsonl, save_jsonl
from repro.exceptions import ParseError
from repro.ontology.graph import Ontology
from repro.ontology.io.sqlitedb import SQLiteOntology, save_sqlite

_MANIFEST = "engine.json"
_ONTOLOGY = "ontology.db"
_CORPUS = "corpus.jsonl"
_INDEXES = "indexes.db"

FORMAT_VERSION = 1


def save_engine(engine: SearchEngine, directory: str | Path) -> None:
    """Persist an engine's world into ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_sqlite(engine.ontology, directory / _ONTOLOGY)
    save_jsonl(engine.collection, directory / _CORPUS)
    manifest = {
        "format_version": FORMAT_VERSION,
        "ontology": _ONTOLOGY,
        "corpus": _CORPUS,
        "indexes": _INDEXES,
        "collection_name": engine.collection.name,
        "documents": len(engine.collection),
        "concepts": len(engine.ontology),
    }
    (directory / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    # Index tables are rebuilt on load (cheap relative to extraction);
    # building them here too gives a ready-to-serve directory for
    # processes that mount it read-only.
    from repro.index.sqlite import SQLiteIndexStore
    store = SQLiteIndexStore.build(engine.collection,
                                   directory / _INDEXES)
    store.close()


def load_engine(directory: str | Path, *,
                backend: str = "sqlite",
                ontology_in_memory: bool = False) -> SearchEngine:
    """Reload an engine saved with :func:`save_engine`.

    Parameters
    ----------
    backend:
        ``"sqlite"`` (default) reuses the persisted index database;
        ``"memory"`` rebuilds dict indexes from the corpus.
    ontology_in_memory:
        Load the ontology fully into RAM instead of serving it from
        SQLite (faster queries, more memory).
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise ParseError("not an engine directory (missing manifest)",
                         path=str(manifest_path))
    manifest = json.loads(manifest_path.read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ParseError(
            f"unsupported engine format {manifest.get('format_version')!r}",
            path=str(manifest_path),
        )
    if ontology_in_memory:
        ontology = _materialize(SQLiteOntology(directory
                                               / manifest["ontology"]))
    else:
        ontology = SQLiteOntology(directory / manifest["ontology"])
    collection = load_jsonl(directory / manifest["corpus"],
                            name=manifest.get("collection_name"))
    if backend == "sqlite":
        return SearchEngine(ontology, collection, backend="sqlite",
                            sqlite_path=str(directory
                                            / manifest["indexes"]),
                            sqlite_rebuild=False)
    return SearchEngine(ontology, collection, backend=backend)


def _materialize(disk_ontology: SQLiteOntology) -> Ontology:
    """Copy a SQLite-backed ontology into a plain in-memory one."""
    from repro.ontology.builder import OntologyBuilder

    builder = OntologyBuilder(disk_ontology.name)
    for concept in disk_ontology.concepts():
        builder.add_concept(concept, disk_ontology.label(concept),
                            disk_ontology.synonyms(concept))
    for concept in disk_ontology.concepts():
        for child in disk_ontology.children(concept):
            builder.add_edge(concept, child)
    disk_ontology.close()
    return builder.build()
