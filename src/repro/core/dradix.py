"""The D-Radix DAG (Definition 3 of the paper).

A D-Radix DAG indexes every Dewey address of the concepts of a document
``d`` and a query ``q`` (for SDS, the query document's concepts), and
annotates every node with two distances: the shortest valid-path distance
to the nearest concept of ``d`` and to the nearest concept of ``q``.

Construction initializes the annotations to 0 for nodes whose concept
belongs to the respective set and ∞ otherwise; the *tuning* phase then
propagates them with one bottom-up sweep (pulling distances from children)
followed by one top-down sweep (pulling from parents).  Because the two
sweeps compose only up-then-down paths, all propagated values travel along
valid ontology paths through a common ancestor, and since the D-Radix has
a single root (the ontology root), the common ancestor of any two nodes is
always visited — the paper's correctness argument, Section 4.3.

Unlike a plain Radix DAG, concept nodes of ``d ∪ q`` are never merged into
edges even when they have a single child (the paper's R/U example): the
insertion machinery in :mod:`repro.core.radix` guarantees this naturally,
because explicitly inserted concepts become nodes and nothing ever merges
an existing node away.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable

from repro.core.radix import RadixDAG, RadixNode
from repro.exceptions import EmptyDocumentError
from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology
from repro.types import INFINITY, ConceptId, DeweyAddress

DOC = 0
"""Index of the nearest-document distance slot on a radix node."""

QUERY = 1
"""Index of the nearest-query distance slot on a radix node."""


class DRadixDAG:
    """D-Radix over a document and a query concept set.

    Parameters
    ----------
    ontology:
        The validated concept DAG.
    doc_concepts, query_concepts:
        The two concept sets.  For an RDS query, ``query_concepts`` is the
        user's concept set; for SDS it is the query document's concepts.

    Notes
    -----
    Use :meth:`build` (or :class:`repro.core.drc.DRC`) for the common
    construct-insert-tune flow; the incremental methods exist so tests can
    replay the paper's Example 2 step by step.
    """

    def __init__(self, ontology: Ontology,
                 doc_concepts: Collection[ConceptId],
                 query_concepts: Collection[ConceptId]) -> None:
        if not doc_concepts:
            raise EmptyDocumentError("<document>")
        if not query_concepts:
            raise EmptyDocumentError("<query>")
        self._ontology = ontology
        self.doc_concepts = frozenset(doc_concepts)
        self.query_concepts = frozenset(query_concepts)
        self.dag = RadixDAG(ontology, on_create=self._init_distances)
        self._tuned = False
        # The root was created before the hook could see the concept sets
        # only if ``_init_distances`` ran during ``RadixDAG.__init__``;
        # re-initialize it explicitly to be safe.
        self._init_distances(self.dag.root)

    @classmethod
    def build(cls, ontology: Ontology, dewey: DeweyIndex,
              doc_concepts: Collection[ConceptId],
              query_concepts: Collection[ConceptId]) -> "DRadixDAG":
        """Construct, insert all addresses in lexicographic order and tune."""
        dradix = cls(ontology, doc_concepts, query_concepts)
        for address, concept_id in cls.merged_address_list(
                dewey, doc_concepts, query_concepts):
            dradix.insert(address, concept_id)
        dradix.tune()
        return dradix

    @staticmethod
    def merged_address_list(
        dewey: DeweyIndex,
        doc_concepts: Iterable[ConceptId],
        query_concepts: Iterable[ConceptId],
    ) -> list[tuple[DeweyAddress, ConceptId]]:
        """``Pd`` and ``Pq`` merged in lexicographic order (Algorithm 1).

        A concept occurring in both sets contributes its addresses once.
        """
        doc_set = set(doc_concepts)
        combined = doc_set | set(query_concepts)
        return dewey.sorted_address_list(combined)

    # ------------------------------------------------------------------
    def _init_distances(self, node: RadixNode) -> None:
        node.dist = [
            0.0 if node.concept_id in self.doc_concepts else INFINITY,
            0.0 if node.concept_id in self.query_concepts else INFINITY,
        ]

    def insert(self, address: DeweyAddress, concept_id: ConceptId) -> None:
        """Insert one address (construction phase of Algorithm 1)."""
        self._tuned = False
        self.dag.insert(address, concept_id)

    def tune(self) -> None:
        """Propagate distances: bottom-up sweep, then top-down sweep.

        Each sweep applies Eq. 4: ``D(cj) = min(D(cj), min over neighbors
        ck of D(ck) + D(cj, ck))`` where the node-to-node distance is the
        radix edge label length (the number of ontology levels the
        compressed edge spans).
        """
        order = self.dag.topological_order()
        self.sweep_bottom_up(order)
        self.sweep_top_down(order)
        self._tuned = True

    def sweep_bottom_up(self, order: list | None = None) -> None:
        """The bottom-up half of tuning: pull distances from children.

        After this sweep each node knows its distance to the nearest
        document/query concept *below* it — the state the paper's
        Figure 5(f) depicts.  Exposed separately so tests can assert that
        intermediate state; normal callers use :meth:`tune`.
        """
        if order is None:
            order = self.dag.topological_order()
        for node in reversed(order):
            for label, child in node.children:
                edge_length = len(label)
                for slot in (DOC, QUERY):
                    candidate = child.dist[slot] + edge_length
                    if candidate < node.dist[slot]:
                        node.dist[slot] = candidate

    def sweep_top_down(self, order: list | None = None) -> None:
        """The top-down half of tuning: pull distances from parents.

        Composes with the bottom-up sweep to cover all up-then-down valid
        paths, producing the paper's Figure 5(g) state.
        """
        if order is None:
            order = self.dag.topological_order()
        for node in order:
            for label, child in node.children:
                edge_length = len(label)
                for slot in (DOC, QUERY):
                    candidate = node.dist[slot] + edge_length
                    if candidate < child.dist[slot]:
                        child.dist[slot] = candidate

    # ------------------------------------------------------------------
    def nearest_document_distance(self, concept_id: ConceptId) -> float:
        """``Ddc(d, concept)`` read off the tuned index."""
        self._require_tuned()
        return self.dag.node(concept_id).dist[DOC]

    def nearest_query_distance(self, concept_id: ConceptId) -> float:
        """``Ddc(q, concept)`` read off the tuned index."""
        self._require_tuned()
        return self.dag.node(concept_id).dist[QUERY]

    def document_query_distance(self) -> float:
        """``Ddq(d, q)`` (Eq. 2): sum of nearest-document distances over
        the query concepts."""
        self._require_tuned()
        return sum(
            self.dag.node(concept_id).dist[DOC]
            for concept_id in self.query_concepts
        )

    def document_document_distance(self) -> float:
        """``Ddd(d, q)`` (Eq. 3): the symmetric normalized distance."""
        self._require_tuned()
        doc_to_query = sum(
            self.dag.node(concept_id).dist[QUERY]
            for concept_id in self.doc_concepts
        )
        query_to_doc = sum(
            self.dag.node(concept_id).dist[DOC]
            for concept_id in self.query_concepts
        )
        return (doc_to_query / len(self.doc_concepts)
                + query_to_doc / len(self.query_concepts))

    def distance_annotations(self) -> dict[ConceptId, tuple[float, float]]:
        """``{concept: (nearest-document, nearest-query)}`` for every node.

        This is the annotation shown in the paper's Figure 5(e)-(g).
        """
        return {
            node.concept_id: (node.dist[DOC], node.dist[QUERY])
            for node in self.dag.nodes()
        }

    def _require_tuned(self) -> None:
        if not self._tuned:
            raise RuntimeError("call tune() before reading distances")
