"""The paper's contribution: D-Radix, DRC distances, and kNDS search.

* :mod:`repro.core.radix` — the compressed Radix DAG over Dewey addresses
  (Figure 4) and the path-insertion machinery (Function InsertPath).
* :mod:`repro.core.dradix` — the D-Radix DAG: a Radix DAG annotated with
  nearest-document and nearest-query distances (Definition 3).
* :mod:`repro.core.drc` — the DRC algorithm (Algorithm 1): build a D-Radix
  over the document and query concepts, tune distances with one bottom-up
  and one top-down sweep, and read off ``Ddq`` / ``Ddd`` in O(n log n).
* :mod:`repro.core.knds` — the kNDS branch-and-bound top-k search
  (Algorithm 2) for both RDS and SDS queries.
* :mod:`repro.core.arena` — the packed Dewey arena: interned addresses,
  LCP-accelerated distance kernels, and the shared concept-distance cache
  the hot paths consult before falling back to D-Radix builds.
* :mod:`repro.core.engine` — a facade tying ontology, corpus, indexes and
  algorithms together.
"""

from repro.core.arena import ConceptDistanceCache, PackedDeweyArena
from repro.core.drc import DRC
from repro.core.dradix import DRadixDAG
from repro.core.engine import SearchEngine
from repro.core.expansion import QueryExpander, merged_rds
from repro.core.knds import KNDSConfig, KNDSearch
from repro.core.mapreduce import MapReduceKNDS, MapReduceRuntime
from repro.core.radix import RadixDAG, RadixNode
from repro.core.results import QueryStats, RankedResults, ResultItem

__all__ = [
    "RadixDAG",
    "RadixNode",
    "DRadixDAG",
    "DRC",
    "PackedDeweyArena",
    "ConceptDistanceCache",
    "KNDSearch",
    "KNDSConfig",
    "MapReduceKNDS",
    "MapReduceRuntime",
    "SearchEngine",
    "QueryExpander",
    "merged_rds",
    "RankedResults",
    "ResultItem",
    "QueryStats",
]
