"""SearchEngine — one object tying ontology, corpus, indexes and algorithms.

The facade most applications want: build it from an ontology and a
document collection, pick a storage backend, and issue RDS/SDS queries
with either the paper's kNDS algorithm (default) or one of the baselines.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterable, Sequence
from types import TracebackType
from typing import Any, TYPE_CHECKING

from repro.core.arena import PackedDeweyArena
from repro.core.drc import DRC
from repro.core.knds import KNDSConfig, KNDSearch
from repro.core.results import RankedResults
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import QueryError
from repro.index.memory import MemoryForwardIndex, MemoryInvertedIndex
from repro.index.sqlite import SQLiteIndexStore
from repro.obs.logging import get_logger
from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology
from repro.types import ConceptId

if TYPE_CHECKING:
    from repro.baselines.fullscan import FullScanSearch
    from repro.obs import Observability
    from repro.obs.tracing import Span

_LOG = get_logger("engine")


class SearchEngine:
    """Concept-based top-k search over one corpus.

    Parameters
    ----------
    ontology:
        The concept DAG; validated on construction if it was not already.
    collection:
        The document corpus.
    backend:
        ``"memory"`` (default) for dict-backed indexes or ``"sqlite"`` for
        the database-backed deployment the paper used (MySQL there).
    sqlite_path:
        Database location when ``backend="sqlite"``; defaults to an
        in-memory database.
    arena:
        An existing :class:`repro.core.arena.PackedDeweyArena` to adopt
        instead of packing a private one — the shard-worker fast path,
        where an attached :class:`repro.core.sharena.SharedArenaView`
        makes engine construction O(1) in ontology size.  Must be
        packed against the *same ontology object*.
    kernel_tier:
        Arena kernel selection (``"auto"``/``"packed"``/``"numpy"``,
        see :data:`repro.core.arena.KERNEL_TIERS`); ignored when an
        ``arena`` is injected (the injected arena's tier wins).
    obs:
        An optional :class:`repro.obs.Observability` bundle, threaded
        through every layer (kNDS, DRC, indexes, baselines): queries run
        under an ``engine.query`` span, feed the ``query.latency_seconds``
        histogram, and publish all per-layer counters.

    The engine is a context manager; ``with SearchEngine(...) as engine:``
    guarantees :meth:`close` (which releases the SQLite store, if any).

    Concurrency: queries (:meth:`rds`/:meth:`sds`/:meth:`explain`) are
    read-only and may run from many threads at once.  Mutations
    (:meth:`add_document`/:meth:`remove_document`) are serialized behind
    an internal lock and bump :attr:`epoch`; readers racing a mutation
    see either the old or the new corpus, and epoch-tagged caches (see
    :mod:`repro.serve`) use the counter to drop answers computed before
    the change.

    Example
    -------
    >>> from repro import figure3_ontology, example4_collection
    >>> engine = SearchEngine(figure3_ontology(), example4_collection())
    >>> engine.rds(["F", "I"], k=2).doc_ids()
    ['d2', 'd3']
    """

    #: Engine-level default kNDS configuration.  Unlike the raw
    #: :class:`~repro.core.knds.KNDSearch` (which keeps the paper's
    #: first-settled tie behaviour so the Table 2 traces stay exact),
    #: the engine canonicalizes ties by ``(distance, doc_id)`` — the
    #: determinism contract that makes results reproducible across
    #: runs, processes, and shard layouts (:mod:`repro.shard`).
    DEFAULT_CONFIG = KNDSConfig(stable_ties=True)

    def __init__(self, ontology: Ontology, collection: DocumentCollection, *,
                 backend: str = "memory",
                 sqlite_path: str = ":memory:",
                 sqlite_rebuild: bool = True,
                 default_config: KNDSConfig | None = None,
                 arena: PackedDeweyArena | None = None,
                 kernel_tier: str = "auto",
                 obs: "Observability | None" = None) -> None:
        ontology.validate()
        self.ontology = ontology
        self.collection = collection
        self.backend = backend
        self.default_config = (self.DEFAULT_CONFIG if default_config is None
                               else default_config)
        if arena is not None:
            # Arena injection: shard workers hand in an attached
            # repro.core.sharena.SharedArenaView so the engine reuses
            # the coordinator's packed buffers instead of re-packing.
            if arena.ontology is not ontology:
                raise QueryError(
                    "injected arena was packed for a different ontology "
                    "object; arena ids are only valid for the ontology "
                    "they were interned against")
            self.arena = arena
            self.dewey = arena.dewey
        else:
            self.dewey = DeweyIndex(ontology)
            self.arena = PackedDeweyArena(ontology, self.dewey,
                                          kernel_tier=kernel_tier)
        self.drc = DRC(ontology, self.dewey, arena=self.arena)
        if backend == "memory":
            self.inverted = MemoryInvertedIndex.from_collection(
                collection, ontology=ontology)
            self.forward = MemoryForwardIndex.from_collection(collection)
            self._store = None
        elif backend == "sqlite":
            if sqlite_rebuild:
                self._store = SQLiteIndexStore.build(collection, sqlite_path)
            else:
                # Reuse a database built earlier (see
                # :mod:`repro.core.persistence`).
                self._store = SQLiteIndexStore.open(sqlite_path)
            self.inverted = self._store.inverted
            self.forward = self._store.forward
        else:
            raise QueryError(f"unknown backend: {backend!r}")
        self._knds = KNDSearch(
            ontology,
            inverted=self.inverted,
            forward=self.forward,
            dewey=self.dewey,
            drc=self.drc,
            arena=self.arena,
        )
        self._mutation_lock = threading.Lock()
        # Readers (serve cache keys) take lock-free snapshots of the
        # monotonic epoch; only mutations are serialized.
        self._epoch = 0  # guarded by: _mutation_lock (writes)
        self._obs: "Observability | None" = None
        self.instrument(obs)

    def instrument(self, obs: "Observability | None") -> None:
        """Thread an :class:`repro.obs.Observability` bundle everywhere.

        Attaches (or, with ``None``, detaches) the bundle on the engine
        itself, the kNDS searcher, the DRC calculator and both index
        views, so one call is enough even for engines reloaded via
        :func:`repro.core.persistence.load_engine`.
        """
        self._obs = obs
        self._knds.instrument(obs)
        self.drc.instrument(obs)
        self.inverted.instrument(obs)
        self.forward.instrument(obs)
        if obs is not None:
            _LOG.debug("engine instrumented",
                       extra={"backend": self.backend,
                              "documents": len(self.collection)})

    @classmethod
    def for_partition(cls, ontology: Ontology,
                      documents: Iterable[Document], *,
                      name: str = "partition",
                      default_config: KNDSConfig | None = None,
                      arena: PackedDeweyArena | None = None,
                      kernel_tier: str = "auto",
                      obs: "Observability | None" = None) -> "SearchEngine":
        """Build an engine owning the indexes for one corpus partition.

        The composition unit of the sharded deployment
        (:mod:`repro.shard`): each worker process holds one of these
        over its slice of the corpus.  Index ownership is per engine
        (each builds its own inverted/forward views over exactly the
        documents it was given), the ontology and algorithm surface are
        identical to the full engine, and per-partition results merge
        via :func:`repro.core.results.merge_ranked`.  ``arena`` /
        ``kernel_tier`` forward to the constructor: workers that
        attached a shared arena snapshot inject it here.
        """
        return cls(ontology, DocumentCollection(documents, name=name),
                   default_config=default_config, arena=arena,
                   kernel_tier=kernel_tier, obs=obs)

    # ------------------------------------------------------------------
    def rds(self, query_concepts: Sequence[ConceptId], k: int = 10, *,
            algorithm: str = "knds",
            config: KNDSConfig | None = None,
            analyze: bool = False,
            **overrides: Any) -> RankedResults:
        """Relevant Document Search: top-k documents for a concept set.

        ``algorithm`` is ``"knds"`` (default), ``"fullscan"`` (the paper's
        no-pruning baseline) or ``"ta"`` (Threshold Algorithm over
        precomputed distance-sorted postings; RDS only).

        ``analyze=True`` attaches a per-query cost profile
        (``RankedResults.cost_profile``) on the kNDS path; the baselines
        accept the flag but return no profile.
        """
        with self._query_span("rds", algorithm, k):
            if algorithm == "knds":
                return self._knds.rds(
                    query_concepts, k,
                    self.default_config if config is None else config,
                    analyze=analyze, **overrides)
            if algorithm == "fullscan":
                return self._fullscan().rds(query_concepts, k)
            if algorithm == "ta":
                from repro.baselines.ta import ThresholdAlgorithm
                ta = ThresholdAlgorithm.build(
                    self.ontology, self.collection, concepts=query_concepts,
                    obs=self._obs)
                return ta.rds(query_concepts, k)
            raise QueryError(f"unknown algorithm: {algorithm!r}")

    def sds(self, query_document: Document | str | Sequence[ConceptId],
            k: int = 10, *, algorithm: str = "knds",
            config: KNDSConfig | None = None,
            analyze: bool = False,
            **overrides: Any) -> RankedResults:
        """Similar Document Search: top-k documents for a query document.

        ``query_document`` may be a :class:`Document`, a doc id from the
        indexed collection, or a bare concept sequence.  ``analyze=True``
        attaches a cost profile on the kNDS path (see :meth:`rds`).
        """
        document = self._resolve_document(query_document)
        with self._query_span("sds", algorithm, k):
            if algorithm == "knds":
                return self._knds.sds(
                    document, k,
                    self.default_config if config is None else config,
                    analyze=analyze, **overrides)
            if algorithm == "fullscan":
                return self._fullscan().sds(document, k)
            raise QueryError(f"unknown algorithm: {algorithm!r}")

    # ------------------------------------------------------------------
    # Batch query API
    # ------------------------------------------------------------------
    def rds_many(self, queries: Sequence[Sequence[ConceptId]],
                 k: int = 10, *, algorithm: str = "knds",
                 config: KNDSConfig | None = None,
                 analyze: bool = False,
                 **overrides: Any) -> list[RankedResults]:
        """RDS for a batch of concept-set queries, in order.

        Results are exactly ``[self.rds(q, k, ...) for q in queries]``;
        the point of the batch entry is amortization: the packed arena
        interns each query once up front, and every concept-pair distance
        computed for one query is served from the shared
        :class:`repro.core.arena.ConceptDistanceCache` for the rest of
        the batch.  The serve layer's ``/search/rds:batch`` endpoint
        lands here for its cache misses.
        """
        for query in queries:
            self._prewarm(query)
        return [self.rds(query, k, algorithm=algorithm, config=config,
                         analyze=analyze, **overrides)
                for query in queries]

    def sds_many(self, query_documents: Sequence[
                     Document | str | Sequence[ConceptId]],
                 k: int = 10, *, algorithm: str = "knds",
                 config: KNDSConfig | None = None,
                 analyze: bool = False,
                 **overrides: Any) -> list[RankedResults]:
        """SDS for a batch of query documents, in order.

        Same amortization story as :meth:`rds_many`; each entry may be a
        :class:`Document`, an indexed doc id, or a concept sequence.
        """
        for query_document in query_documents:
            resolved = self._resolve_document(query_document)
            if isinstance(resolved, Document):
                self._prewarm(resolved.concepts)
            else:
                self._prewarm(resolved)
        return [self.sds(query_document, k, algorithm=algorithm,
                         config=config, analyze=analyze, **overrides)
                for query_document in query_documents]

    def _prewarm(self, concepts: Sequence[ConceptId]) -> None:
        """Intern known concepts ahead of a batch (unknowns left for
        query validation to reject with the proper error)."""
        ontology = self.ontology
        self.arena.intern_unique(
            concept for concept in concepts if concept in ontology)

    # ------------------------------------------------------------------
    # Incremental corpus maintenance
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Monotonically increasing corpus-mutation counter.

        Starts at 0 and increments once per successful
        :meth:`add_document` / :meth:`remove_document`.  Anything derived
        from query results (most importantly the
        :class:`repro.serve.cache.QueryCache`) records the epoch it was
        computed under and treats any later epoch as an invalidation
        signal, so stale answers can never outlive a corpus change.
        """
        return self._epoch

    def add_document(self, document: Document) -> None:
        """Index a new document on the fly (no distance precomputation).

        This is the update story the paper contrasts with the Threshold
        Algorithm: "when a new patient arrives at the point-of-care, we
        can instantly add his or her EMR to our database" — the kNDS
        indexes need only the document's own postings rows, whereas TA
        must touch every concept postings list
        (:meth:`repro.baselines.ta.ThresholdAlgorithm.add_document`).
        """
        document.require_concepts()
        for concept_id in document.concepts:
            if concept_id not in self.ontology:
                from repro.exceptions import UnknownConceptError
                raise UnknownConceptError(concept_id)
        with self._mutation_lock:
            self.collection.add(document)
            if self._store is not None:
                self._store.add_document(document)
            else:
                self.inverted.add_document(document)
                self.forward.add_document(document)
            self._epoch += 1
        # Concept distances depend only on the ontology, so the arena and
        # its distance cache stay valid across corpus mutations — prewarm
        # the new document's concepts instead of invalidating anything.
        self.arena.intern_unique(document.concepts)

    def remove_document(self, doc_id: str) -> Document:
        """Remove a document from the corpus and all indexes."""
        with self._mutation_lock:
            document = self.collection.remove(doc_id)
            if self._store is not None:
                self._store.remove_document(doc_id)
            else:
                self.inverted.remove_document(document)
                self.forward.remove_document(doc_id)
            self._epoch += 1
        return document

    # ------------------------------------------------------------------
    def explain(self, doc_id: str,
                query_concepts: Sequence[ConceptId]) -> str:
        """Human-readable decomposition of ``Ddq(doc, query)``.

        Lists, per query concept, the nearest document concept and an
        actual shortest valid path through the ontology — the "why is
        this patient relevant" view (see :mod:`repro.core.explain`).
        """
        from repro.core.explain import explain_rds, render_explanation

        document = self.collection.get(doc_id)
        explanation = explain_rds(
            self.ontology, document.require_concepts(), query_concepts)
        return render_explanation(self.ontology, explanation)

    # ------------------------------------------------------------------
    @property
    def knds(self) -> KNDSearch:
        """Direct access to the kNDS searcher (progressive APIs etc.)."""
        return self._knds

    def _query_span(self, kind: str, algorithm: str,
                    k: int) -> "_TracedQuery | _NullQueryContext":
        """Context manager around one query: top-level span + latency.

        A shared no-op context when the engine is not instrumented, so
        the disabled path costs one attribute check and nothing else.
        """
        obs = self._obs
        if obs is None:
            return _NULL_QUERY_CONTEXT
        return _TracedQuery(obs, kind, algorithm, self.backend, k)

    def _fullscan(self) -> "FullScanSearch":
        from repro.baselines.fullscan import FullScanSearch
        return FullScanSearch(
            self.ontology,
            self.collection,
            drc=self.drc,
            obs=self._obs,
        )

    def _resolve_document(
        self, query_document: Document | str | Sequence[ConceptId],
    ) -> Document | Sequence[ConceptId]:
        if isinstance(query_document, str):
            return self.collection.get(query_document)
        return query_document

    def close(self) -> None:
        """Release the SQLite store, if any."""
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "SearchEngine":
        """Enter the context manager; returns the engine itself."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Exit the context manager, releasing backend resources."""
        self.close()


class _TracedQuery:
    """One instrumented query: ``engine.query`` span + latency histogram."""

    __slots__ = ("_obs", "_span", "_start", "kind", "algorithm",
                 "backend", "k")

    def __init__(self, obs: "Observability", kind: str, algorithm: str,
                 backend: str, k: int) -> None:
        self._obs = obs
        self._span: "Span | None" = None
        self._start = 0.0
        self.kind = kind
        self.algorithm = algorithm
        self.backend = backend
        self.k = k

    def __enter__(self) -> "_TracedQuery":
        self._span = self._obs.tracer.span(
            "engine.query", kind=self.kind, algorithm=self.algorithm,
            backend=self.backend, k=self.k)
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        elapsed = time.perf_counter() - self._start
        if exc_type is None:
            self._obs.observe_query(elapsed)
            _LOG.info("query done",
                      extra={"kind": self.kind,
                             "algorithm": self.algorithm,
                             "backend": self.backend,
                             "k": self.k,
                             "seconds": round(elapsed, 6)})
        self._span.__exit__(exc_type, exc, tb)


class _NullQueryContext:
    """Reusable do-nothing context for uninstrumented engines."""

    __slots__ = ()

    def __enter__(self) -> "_NullQueryContext":
        """No-op enter."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """No-op exit; never suppresses exceptions."""
        return None


_NULL_QUERY_CONTEXT = _NullQueryContext()
