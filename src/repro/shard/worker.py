"""The shard worker process: one :class:`SearchEngine` per partition.

Spawned by the coordinator via ``multiprocessing`` (``spawn`` context —
no inherited state, the worker re-imports :mod:`repro` cleanly) with a
:class:`WorkerSpec` carrying everything it needs: the ontology, its
slice of the corpus, and the loopback address + auth token of the
coordinator's listener.  The worker dials back, authenticates with a
``("hello", token, shard_index)`` frame, builds its engine, and then
answers framed requests until it is told to shut down or the link
drops.

This *is* the "real cluster runtime" slot that
:mod:`repro.core.mapreduce` leaves open: the per-partition engine plays
the mapper role (produce a local top-k over its slice) and
:func:`repro.core.results.merge_ranked` in the coordinator is the
reducer.  Errors raised while handling a request are pickled and
shipped back whole, so the coordinator re-raises the worker's typed
exception (``UnknownConceptError`` and friends) in the caller's thread.
"""

from __future__ import annotations

import socket
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.engine import SearchEngine
from repro.core.knds import KNDSConfig
from repro.core.sharena import SharedArenaSpec, SharedArenaView, try_attach
from repro.corpus.document import Document
from repro.exceptions import ShardProtocolError
from repro.ontology.graph import Ontology
from repro.shard.protocol import recv_frame, send_frame
from repro.types import ConceptId, DocId

__all__ = ["WorkerSpec", "run_worker"]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything one worker process needs, shipped through spawn args.

    ``arena`` is the optional locator of the coordinator's shared arena
    snapshot (:func:`repro.core.sharena.publish_snapshot`): when set,
    the worker attaches the segment read-only instead of re-packing the
    ontology — O(1) cold start — and falls back to a private arena if
    the attach fails (segment gone, epoch moved on).  ``kernel_tier``
    selects the arena kernel in either case.
    """

    shard_index: int
    host: str
    port: int
    token: bytes
    ontology: Ontology
    documents: tuple[Document, ...]
    collection_name: str = "shard"
    default_config: KNDSConfig | None = None
    arena: SharedArenaSpec | None = None
    kernel_tier: str = "auto"


def run_worker(spec: WorkerSpec) -> None:
    """Process entry point: connect, authenticate, build, serve.

    Must stay a module-level function — ``spawn`` pickles the target by
    qualified name.
    """
    sock = socket.create_connection((spec.host, spec.port), timeout=30.0)
    view: SharedArenaView | None = None
    try:
        sock.settimeout(None)
        send_frame(sock, ("hello", spec.token, spec.shard_index))
        if spec.arena is not None:
            # Best effort by design: any snapshot problem degrades to
            # the pre-shared-arena behaviour (pack privately), never to
            # a dead shard.
            view = try_attach(spec.arena, spec.ontology,
                              kernel_tier=spec.kernel_tier)
        engine = SearchEngine.for_partition(
            spec.ontology, spec.documents,
            name=f"{spec.collection_name}-{spec.shard_index}",
            default_config=spec.default_config,
            arena=view, kernel_tier=spec.kernel_tier)
        with engine:
            _serve(sock, engine)
    finally:
        if view is not None:
            view.detach()
        sock.close()


def _serve(sock: socket.socket, engine: SearchEngine) -> None:
    """Answer framed requests until shutdown or link loss."""
    handlers = _handlers(engine)
    while True:
        try:
            message = recv_frame(sock)
        except (EOFError, OSError):
            return  # coordinator went away; nothing left to answer
        if not (isinstance(message, tuple) and len(message) == 4
                and message[0] == "req"):
            raise ShardProtocolError(
                f"unexpected message from coordinator: {message!r:.100}")
        _tag, msg_id, method, kwargs = message
        if method == "shutdown":
            send_frame(sock, ("ok", msg_id, None))
            return
        handler = handlers.get(method)
        try:
            if handler is None:
                raise ShardProtocolError(f"unknown method {method!r}")
            payload = handler(**kwargs)
        except BaseException as error:  # noqa: BLE001 - marshalled to caller
            send_frame(sock, ("err", msg_id, error))
            continue
        send_frame(sock, ("ok", msg_id, payload))


def _handlers(engine: SearchEngine) -> dict[str, Callable[..., Any]]:
    """Dispatch table: method name to engine call."""

    def rds(*, concepts: Sequence[ConceptId], k: int,
            algorithm: str, config: KNDSConfig | None) -> Any:
        return engine.rds(concepts, k, algorithm=algorithm, config=config)

    def sds(*, concepts: Sequence[ConceptId], k: int,
            algorithm: str, config: KNDSConfig | None) -> Any:
        return engine.sds(concepts, k, algorithm=algorithm, config=config)

    def rds_many(*, queries: Sequence[Sequence[ConceptId]], k: int,
                 algorithm: str, config: KNDSConfig | None) -> Any:
        return engine.rds_many(queries, k, algorithm=algorithm, config=config)

    def sds_many(*, queries: Sequence[Sequence[ConceptId]], k: int,
                 algorithm: str, config: KNDSConfig | None) -> Any:
        return engine.sds_many(queries, k, algorithm=algorithm, config=config)

    def add_document(*, document: Document) -> None:
        engine.add_document(document)

    def remove_document(*, doc_id: DocId) -> None:
        engine.remove_document(doc_id)

    def health() -> dict[str, Any]:
        return {"documents": len(engine.collection), "epoch": engine.epoch,
                "kernel_tier": engine.arena.kernel_tier,
                "shared_arena": isinstance(engine.arena, SharedArenaView)}

    def ping() -> str:
        return "pong"

    return {
        "rds": rds, "sds": sds,
        "rds_many": rds_many, "sds_many": sds_many,
        "add_document": add_document, "remove_document": remove_document,
        "health": health, "ping": ping,
    }
