"""Deterministic corpus partitioning for the sharded engine.

The planner decides, for every document, which shard owns it.  Two
policies, with an explicit stability contract because the serve cache
and the bit-identity guarantee both lean on it:

``hash`` (default)
    A document's shard is ``crc32(doc_id) % shards`` — a pure function
    of the doc id and the shard count.  Stable across processes,
    restarts, insertion order, and corpus composition: adding or
    removing *other* documents never moves a document.  Partition sizes
    are only statistically balanced.

``round_robin``
    Documents are dealt in sorted-doc-id order at plan time, giving
    perfectly balanced partitions (sizes differ by at most one).  The
    assignment of planned documents is pinned inside the planner;
    documents added later go to the currently smallest shard (lowest
    index on ties).  Balanced but position-dependent: the same doc id
    may land on different shards for different corpus snapshots, so
    respawning a worker must rebuild from the planner's recorded
    assignment (the coordinator does exactly that).

Either way the *query answer* is partition-independent: per-shard
top-k lists merge through :func:`repro.core.results.merge_ranked`
under the engine's canonical ``(distance, doc_id)`` order, so where a
document lives never shows in the ranking.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable

from repro.corpus.document import Document
from repro.exceptions import InvariantError, QueryError
from repro.types import DocId

__all__ = ["POLICIES", "ShardPlanner"]

POLICIES = ("hash", "round_robin")


class ShardPlanner:
    """Maps doc ids to shard indexes under one of the two policies.

    Not thread-safe on its own: the coordinator serializes mutations
    (``assign``/``release``) behind its mutation lock, and reads during
    queries only touch immutable state (``hash``) or happen under that
    same lock (respawn rebuilds).
    """

    def __init__(self, shards: int, policy: str = "hash") -> None:
        if shards < 1:
            raise QueryError(f"shards must be >= 1, got {shards}")
        if policy not in POLICIES:
            raise QueryError(
                f"unknown shard policy {policy!r}; choose from "
                f"{', '.join(POLICIES)}")
        self.shards = shards
        self.policy = policy
        self._assigned: dict[DocId, int] = {}
        self._counts = [0] * shards

    # ------------------------------------------------------------------
    def plan(self, documents: Iterable[Document]) -> list[list[Document]]:
        """Partition ``documents`` and pin the assignment.

        Returns one document list per shard.  ``hash`` assignments are
        recomputable, but both policies record them so ``members`` and
        respawn rebuilds work uniformly.
        """
        partitions: list[list[Document]] = [[] for _ in range(self.shards)]
        if self.policy == "hash":
            for document in documents:
                index = self._hash_shard(document.doc_id)
                self._record(document.doc_id, index)
                partitions[index].append(document)
            return partitions
        for position, document in enumerate(
                sorted(documents, key=lambda doc: doc.doc_id)):
            index = position % self.shards
            self._record(document.doc_id, index)
            partitions[index].append(document)
        return partitions

    def assign(self, doc_id: DocId) -> int:
        """Assign a *new* document to its shard and pin the assignment."""
        if doc_id in self._assigned:
            raise InvariantError(f"document {doc_id!r} is already assigned")
        if self.policy == "hash":
            index = self._hash_shard(doc_id)
        else:
            index = min(range(self.shards), key=lambda i: self._counts[i])
        self._record(doc_id, index)
        return index

    def release(self, doc_id: DocId) -> int:
        """Drop a document's assignment; returns the shard that owned it."""
        index = self.shard_of(doc_id)
        del self._assigned[doc_id]
        self._counts[index] -= 1
        return index

    def shard_of(self, doc_id: DocId) -> int:
        """The shard owning an assigned document."""
        try:
            return self._assigned[doc_id]
        except KeyError:
            raise InvariantError(
                f"document {doc_id!r} has no shard assignment") from None

    def members(self, index: int,
                documents: Iterable[Document]) -> list[Document]:
        """The subset of ``documents`` assigned to shard ``index``.

        Used to rebuild a partition when a worker is respawned; the
        iteration order of ``documents`` is preserved so the rebuilt
        engine indexes in the same deterministic order.
        """
        if not 0 <= index < self.shards:
            raise InvariantError(
                f"shard index {index} out of range 0..{self.shards - 1}")
        return [document for document in documents
                if self._assigned.get(document.doc_id) == index]

    def counts(self) -> list[int]:
        """Documents currently assigned to each shard."""
        return list(self._counts)

    # ------------------------------------------------------------------
    def _hash_shard(self, doc_id: DocId) -> int:
        return zlib.crc32(doc_id.encode("utf-8")) % self.shards

    def _record(self, doc_id: DocId, index: int) -> None:
        if doc_id in self._assigned:
            raise InvariantError(f"document {doc_id!r} is already assigned")
        self._assigned[doc_id] = index
        self._counts[index] += 1
