"""Framed coordinator/worker transport: 4-byte length prefix + pickle.

The sharded engine (:mod:`repro.shard.engine`) talks to its worker
processes over loopback TCP sockets.  Every message is one *frame*: a
4-byte big-endian payload length followed by that many bytes of pickle
(protocol :data:`pickle.HIGHEST_PROTOCOL`).  Explicit framing — rather
than :class:`multiprocessing.Connection` — keeps the wire format
self-describing, spawn-safe (no file-descriptor inheritance), and easy
to reason about when a worker dies mid-message: a clean EOF at a frame
boundary is a shutdown, an EOF inside a frame is a torn link and raises
:class:`~repro.exceptions.ShardProtocolError`.

Security: pickle is only safe between mutually trusted endpoints.  Both
ends here are processes of the same program on the same machine, the
listener binds to ``127.0.0.1`` only, and the worker must present a
random 16-byte token (handed to it through the spawn arguments, never
the command line) in its first frame before anything else is accepted.

Message shapes (plain tuples, kept deliberately dumb):

* ``("hello", token, shard_index)`` — worker's first frame.
* ``("req", msg_id, method, kwargs)`` — coordinator to worker.
* ``("ok", msg_id, payload)`` / ``("err", msg_id, exception)`` —
  worker to coordinator; the exception instance is re-raised in the
  caller's thread, so workers fail with typed repro errors.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.exceptions import ShardProtocolError

__all__ = ["MAX_FRAME_BYTES", "recv_frame", "send_frame"]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload.  Large enough for any realistic
#: batch of ranked results, small enough that a corrupted length prefix
#: fails fast instead of trying to allocate gigabytes.
MAX_FRAME_BYTES = 1 << 28


def send_frame(sock: socket.socket, message: Any) -> None:
    """Serialize ``message`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ShardProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame and return the deserialized message.

    Raises :class:`EOFError` on a clean shutdown (EOF exactly at a
    frame boundary) and :class:`~repro.exceptions.ShardProtocolError`
    on a torn frame or an implausible length prefix.
    """
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        raise EOFError("peer closed the link")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ShardProtocolError(
            f"frame header announces {length} bytes, above the "
            f"{MAX_FRAME_BYTES}-byte limit — corrupted stream")
    payload = _recv_exact(sock, length, allow_eof=False)
    return pickle.loads(payload)  # noqa: S301 - trusted peer, see module doc


def _recv_exact(sock: socket.socket, count: int,
                *, allow_eof: bool) -> bytes | None:
    """Read exactly ``count`` bytes, or ``None`` on immediate EOF."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ShardProtocolError(
                f"link severed mid-frame ({count - remaining} of "
                f"{count} bytes received)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
