"""Multi-process sharded scatter-gather serving (``repro.shard``).

The production realization of the paper's Section 6.1 scaling story:
the corpus is partitioned deterministically across worker *processes*
(each owning a full :class:`~repro.core.engine.SearchEngine` over its
slice, sidestepping the GIL), queries fan out to every shard, and the
per-shard top-k lists — each computed with kNDS's ``D− ≥ Dk+`` bound
as a correct per-shard early stop — merge back into the exact
single-engine ranking.

Layers:

* :mod:`repro.shard.planner` — who owns which document, and why that
  assignment is stable (:class:`ShardPlanner`).
* :mod:`repro.shard.protocol` — length-prefixed pickle frames over
  loopback TCP.
* :mod:`repro.shard.worker` — the per-partition engine process.
* :mod:`repro.shard.engine` — the :class:`ShardedEngine` coordinator:
  scatter, gather, merge, per-shard timeouts, crash respawn, health.

Serve integration: ``repro serve --shards N`` puts a
:class:`ShardedEngine` behind the unchanged
:class:`repro.serve.QueryService` stack.
"""

from repro.shard.engine import ShardedEngine
from repro.shard.planner import POLICIES, ShardPlanner
from repro.shard.worker import WorkerSpec, run_worker

__all__ = [
    "POLICIES",
    "ShardPlanner",
    "ShardedEngine",
    "WorkerSpec",
    "run_worker",
]
