"""``ShardedEngine`` — scatter-gather coordination over worker processes.

The coordinator presents the same query surface as a single
:class:`repro.core.engine.SearchEngine` (``rds``/``sds``, the batch
variants, ``explain``, mutations, ``epoch``) but executes each query by
fanning it out to N worker processes, one per corpus partition
(:class:`repro.shard.planner.ShardPlanner`), and reducing the per-shard
top-k lists with :func:`repro.core.results.merge_ranked`.

**Determinism contract.**  Workers run the engine's canonical
``stable_ties`` configuration, under which each shard's top-k is the k
lexicographically smallest ``(distance, doc_id)`` pairs of its
partition and kNDS's ``D− ≥ Dk+`` bound is a correct per-shard early
stop (the shard-local ``Dk+`` is at or above the global one).  The
merged ranking is therefore bit-identical — ids, distances, order — to
the single-engine answer, regardless of shard count or policy; tests
assert this.

**Failure semantics.**  Every call carries a per-shard timeout.  A
worker that dies (EOF on its link) or times out is killed and respawned
once from the coordinator's authoritative corpus copy, and the request
is retried on the fresh worker; a second failure surfaces
:class:`~repro.exceptions.ShardUnavailableError` (HTTP 503 at the serve
layer) rather than returning a ranking with a silent hole in it.
Mutations are applied to the coordinator's collection *before* the
worker call, so a respawn triggered mid-mutation rebuilds the partition
already containing the change and the worker call is simply skipped.

Concurrency: queries are lock-free scatter-gathers (any number of
serve-pool threads at once); mutations and respawns are serialized
behind one reentrant lock.  Lock order: ``_lock`` may be held while a
handle's ``_send_lock`` is taken, never the reverse.
"""

from __future__ import annotations

import multiprocessing
import secrets
import socket
import threading
import time
from collections.abc import Sequence
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import replace
from types import TracebackType
from typing import Any, TYPE_CHECKING

from repro.core.arena import PackedDeweyArena
from repro.core.engine import SearchEngine
from repro.core.sharena import SharedArenaSegment, publish_snapshot
from repro.core.knds import KNDSConfig
from repro.core.results import RankedResults, merge_ranked
from repro.corpus.collection import DocumentCollection
from repro.corpus.document import Document
from repro.exceptions import (QueryError, ShardProtocolError,
                              ShardTimeoutError, ShardUnavailableError,
                              UnknownConceptError)
from repro.obs.logging import get_logger
from repro.obs.tracing import NULL_TRACER
from repro.ontology.dewey import DeweyIndex
from repro.ontology.graph import Ontology
from repro.shard.planner import ShardPlanner
from repro.shard.protocol import recv_frame, send_frame
from repro.shard.worker import WorkerSpec, run_worker
from repro.types import ConceptId, DocId

if TYPE_CHECKING:
    from repro.obs import Observability
    from repro.obs.metrics import Counter, Histogram

__all__ = ["ShardedEngine"]

_LOG = get_logger("repro.shard")

_MUTATIONS = frozenset({"add_document", "remove_document"})


class _WorkerDied(Exception):
    """Internal marker: the worker link failed; the call may be retried."""


class _ShardHandle:
    """One live worker: socket, reader thread, in-flight futures."""

    def __init__(self, index: int, process: Any,
                 sock: socket.socket) -> None:
        self.index = index
        self.process = process
        self._sock = sock
        self._send_lock = threading.Lock()
        self._next_id = 0  # guarded by: _send_lock
        self._pending_lock = threading.Lock()
        self._pending: dict[int, Future[Any]] = {}  # guarded by: _pending_lock
        self.dead = False
        self._reader = threading.Thread(
            target=self._read_loop, name=f"repro-shard-reader-{index}",
            daemon=True)
        self._reader.start()

    def submit(self, method: str, kwargs: dict[str, Any]) -> Future[Any]:
        """Send one request frame; the future resolves on its response."""
        future: Future[Any] = Future()
        with self._send_lock:
            if self.dead:
                raise _WorkerDied(f"shard {self.index} link is down")
            msg_id = self._next_id
            self._next_id += 1
            with self._pending_lock:
                self._pending[msg_id] = future
            try:
                send_frame(self._sock, ("req", msg_id, method, kwargs))
            except OSError as error:
                self._fail_pending(error)
                raise _WorkerDied(str(error)) from error
        return future

    def _read_loop(self) -> None:
        while True:
            try:
                message = recv_frame(self._sock)
            except (EOFError, OSError, ShardProtocolError) as error:
                self._fail_pending(error)
                return
            if not (isinstance(message, tuple) and len(message) == 3
                    and message[0] in ("ok", "err")):
                self._fail_pending(
                    ShardProtocolError(f"bad response: {message!r:.100}"))
                return
            tag, msg_id, payload = message
            with self._pending_lock:
                future = self._pending.pop(msg_id, None)
            if future is None:
                continue  # caller gave up (timeout) before the answer came
            if tag == "ok":
                future.set_result(payload)
            elif isinstance(payload, BaseException):
                future.set_exception(payload)
            else:
                future.set_exception(ShardProtocolError(
                    f"error frame without an exception: {payload!r:.100}"))

    def _fail_pending(self, cause: BaseException) -> None:
        """Mark the link dead and wake every waiter with the failure."""
        self.dead = True
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(_WorkerDied(str(cause)))

    def destroy(self, *, graceful: bool = False,
                grace_seconds: float = 1.0) -> None:
        """Tear the worker down; optionally ask politely first."""
        if graceful and not self.dead:
            try:
                self.submit("shutdown", {}).result(grace_seconds)
            except Exception:  # noqa: BLE001 - teardown is best-effort
                pass
        self.dead = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        self.process.join(timeout=grace_seconds)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=grace_seconds)


class ShardedEngine:
    """Drop-in, multi-process replacement for one ``SearchEngine``.

    Duck-typed to the engine surface :class:`repro.serve.QueryService`
    consumes, so the whole serve stack — cache, admission control,
    deadlines, tracing, metrics, drain — runs unchanged on top
    (``repro serve --shards N``).
    """

    def __init__(self, ontology: Ontology, collection: DocumentCollection, *,
                 shards: int = 2, policy: str = "hash",
                 timeout_seconds: float = 30.0,
                 spawn_timeout_seconds: float = 60.0,
                 default_config: KNDSConfig | None = None,
                 shared_arena: bool = False,
                 kernel_tier: str = "auto",
                 obs: "Observability | None" = None) -> None:
        ontology.validate()
        self.ontology = ontology
        self.collection = collection
        self.default_config = (SearchEngine.DEFAULT_CONFIG
                               if default_config is None else default_config)
        self.timeout_seconds = timeout_seconds
        self.spawn_timeout_seconds = spawn_timeout_seconds
        # The coordinator keeps its own dewey/arena: serve-layer cache
        # keys (`arena.cache_token`) and resource gauges read them, and
        # explain() runs locally against the full collection.
        self.dewey = DeweyIndex(ontology)
        self.arena = PackedDeweyArena(ontology, self.dewey,
                                      kernel_tier=kernel_tier)
        self._kernel_tier = kernel_tier
        # shared_arena=True seals the fully interned coordinator arena
        # into one shared-memory segment; every worker (including
        # respawns) attaches it read-only instead of re-packing the
        # ontology, so cold start is O(1) and the packed bytes exist
        # once per host.  Attach failures degrade to private packing
        # inside the worker (see repro.core.sharena.try_attach).
        self._segment: "SharedArenaSegment | None" = None
        if shared_arena:
            self._segment = publish_snapshot(self.arena)
        self._planner = ShardPlanner(shards, policy)
        self._ctx = multiprocessing.get_context("spawn")
        # Serializes mutations *and* respawns (reentrant: a mutation
        # that trips a respawn re-enters on the same thread).
        self._lock = threading.RLock()
        self._epoch = 0  # guarded by: _lock (writes)
        self._closed = False  # guarded by: _lock
        # Lock-free reads sanctioned: shard_health() is advisory and a
        # torn read of an int counter is harmless.
        self._restarts = [0] * shards  # guarded by: _lock (writes)
        self._obs: "Observability | None" = None
        self._m_fanout: "Counter | None" = None
        self._m_kept: "Counter | None" = None
        self._m_dropped: "Counter | None" = None
        self._m_respawns: "Counter | None" = None
        self._m_latency: "Histogram | None" = None
        self._m_shard_latency: "list[Histogram]" = []
        partitions = self._planner.plan(collection)
        self._handles = [self._spawn(index, partition)
                         for index, partition in enumerate(partitions)]
        self.instrument(obs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> int:
        """Number of worker partitions."""
        return self._planner.shards

    @property
    def policy(self) -> str:
        """Partitioning policy name (``hash`` or ``round_robin``)."""
        return self._planner.policy

    @property
    def epoch(self) -> int:
        """Corpus-mutation counter; same contract as the single engine."""
        return self._epoch

    @property
    def shared_arena(self) -> bool:
        """True when workers attach one shared arena snapshot."""
        return self._segment is not None

    def shared_arena_bytes(self) -> int:
        """Size of the published shared arena segment (0 when off).

        The once-per-host figure behind the
        ``resource.arena_shared_bytes`` gauge: attached worker views
        report ``buffer_bytes() == 0``, so the segment is never counted
        once per process.
        """
        segment = self._segment
        return segment.spec.nbytes if segment is not None else 0

    def shard_health(self) -> list[dict[str, Any]]:
        """Coordinator-side health of every worker (no worker I/O).

        ``alive`` is false while a worker is down *between* the crash
        and the next request that triggers its respawn; serving remains
        correct either way, which is why ``/healthz`` reports this as
        degradation rather than failure.
        """
        counts = self._planner.counts()
        health = []
        for index, handle in enumerate(self._handles):
            health.append({
                "shard": index,
                "alive": bool(handle.process.is_alive()) and not handle.dead,
                "pid": handle.process.pid,
                "restarts": self._restarts[index],
                "documents": counts[index],
            })
        return health

    def worker_health(self, index: int) -> dict[str, Any]:
        """In-worker health of shard ``index`` (one round trip).

        Unlike :meth:`shard_health` this asks the worker itself, so it
        reports state only the worker knows: its document count and
        epoch, which kernel tier its arena resolved to, and whether it
        attached the shared snapshot (``shared_arena``) or fell back to
        packing privately.  Triggers a respawn-and-retry if the worker
        is down, like any other call.
        """
        if not 0 <= index < self.shards:
            raise QueryError(
                f"shard index {index} out of range 0..{self.shards - 1}")
        result = self._call(index, "health", {})
        return dict(result)

    def instrument(self, obs: "Observability | None") -> None:
        """Attach (or detach) an observability bundle to the coordinator.

        Workers stay uninstrumented — they are separate processes; the
        coordinator's ``shard.*`` counters, per-shard latency
        histograms, and ``shard.query`` spans are the observable story.
        """
        self._obs = obs
        self.arena.instrument(obs)
        if obs is None:
            self._m_fanout = self._m_kept = self._m_dropped = None
            self._m_respawns = self._m_latency = None
            self._m_shard_latency = []
            return
        metrics = obs.metrics
        self._m_fanout = metrics.counter(
            "shard.fanout", "per-shard requests fanned out")
        self._m_kept = metrics.counter(
            "shard.merge_kept", "per-shard results kept by the merge")
        self._m_dropped = metrics.counter(
            "shard.merge_dropped", "per-shard results cut by the merge")
        self._m_respawns = metrics.counter(
            "shard.respawns", "worker processes respawned after a failure")
        self._m_latency = metrics.histogram(
            "shard.latency_seconds", "per-shard call latency (all shards)")
        self._m_shard_latency = [
            metrics.histogram(f"shard.worker{index}.latency_seconds",
                              f"call latency of shard worker {index}")
            for index in range(self.shards)
        ]

    # ------------------------------------------------------------------
    # Query surface (mirrors SearchEngine)
    # ------------------------------------------------------------------
    def rds(self, query_concepts: Sequence[ConceptId], k: int = 10, *,
            algorithm: str = "knds",
            config: KNDSConfig | None = None,
            analyze: bool = False,
            **overrides: Any) -> RankedResults:
        """Scatter-gather RDS; bit-identical to the single-engine path.

        ``analyze`` is accepted for signature parity but attaches no
        cost profile — per-shard profiles do not compose into one
        meaningful round trace (the baselines set the same precedent).
        """
        del analyze
        kwargs = {"concepts": tuple(query_concepts), "k": int(k),
                  "algorithm": algorithm,
                  "config": self._config(config, overrides)}
        payloads = self._traced_scatter("rds", algorithm, k, "rds", kwargs)
        return self._merge(payloads, k)

    def sds(self, query_document: Document | str | Sequence[ConceptId],
            k: int = 10, *, algorithm: str = "knds",
            config: KNDSConfig | None = None,
            analyze: bool = False,
            **overrides: Any) -> RankedResults:
        """Scatter-gather SDS.  The query document is resolved to its
        concept set *before* fan-out — it may live on any shard (or none,
        when a bare concept sequence or foreign document is given)."""
        del analyze
        kwargs = {"concepts": self._sds_concepts(query_document),
                  "k": int(k), "algorithm": algorithm,
                  "config": self._config(config, overrides)}
        payloads = self._traced_scatter("sds", algorithm, k, "sds", kwargs)
        return self._merge(payloads, k)

    def rds_many(self, queries: Sequence[Sequence[ConceptId]],
                 k: int = 10, *, algorithm: str = "knds",
                 config: KNDSConfig | None = None,
                 analyze: bool = False,
                 **overrides: Any) -> list[RankedResults]:
        """Batch RDS: one fan-out for the whole batch, merged per query."""
        del analyze
        kwargs = {"queries": tuple(tuple(query) for query in queries),
                  "k": int(k), "algorithm": algorithm,
                  "config": self._config(config, overrides)}
        payloads = self._traced_scatter(
            "rds:batch", algorithm, k, "rds_many", kwargs)
        return self._merge_many(payloads, k, len(queries))

    def sds_many(self, query_documents: Sequence[
                     Document | str | Sequence[ConceptId]],
                 k: int = 10, *, algorithm: str = "knds",
                 config: KNDSConfig | None = None,
                 analyze: bool = False,
                 **overrides: Any) -> list[RankedResults]:
        """Batch SDS: entries resolve to concept sets before fan-out."""
        del analyze
        kwargs = {"queries": tuple(self._sds_concepts(query_document)
                                   for query_document in query_documents),
                  "k": int(k), "algorithm": algorithm,
                  "config": self._config(config, overrides)}
        payloads = self._traced_scatter(
            "sds:batch", algorithm, k, "sds_many", kwargs)
        return self._merge_many(payloads, k, len(query_documents))

    def explain(self, doc_id: str,
                query_concepts: Sequence[ConceptId]) -> str:
        """Explain locally: the coordinator holds the full collection."""
        from repro.core.explain import explain_rds, render_explanation
        document = self.collection.get(doc_id)
        explanation = explain_rds(
            self.ontology, document.require_concepts(), query_concepts)
        return render_explanation(self.ontology, explanation)

    # ------------------------------------------------------------------
    # Incremental corpus maintenance
    # ------------------------------------------------------------------
    def add_document(self, document: Document) -> None:
        """Index a new document on its owning shard.

        The coordinator's collection is updated first: if the worker
        call below dies, the respawn rebuilds the partition *from that
        updated collection*, so the mutation is already applied and the
        worker call is skipped (see ``_call``).  Only a failed respawn
        rolls the coordinator back and surfaces the error.
        """
        document.require_concepts()
        for concept_id in document.concepts:
            if concept_id not in self.ontology:
                raise UnknownConceptError(concept_id)
        with self._lock:
            self.collection.add(document)
            index = self._planner.assign(document.doc_id)
            try:
                self._call(index, "add_document", {"document": document})
            except ShardUnavailableError:
                self.collection.remove(document.doc_id)
                self._planner.release(document.doc_id)
                raise
            self._epoch += 1
        self.arena.intern_unique(document.concepts)

    def remove_document(self, doc_id: DocId) -> Document:
        """Remove a document from the corpus and its owning shard."""
        with self._lock:
            document = self.collection.remove(doc_id)
            index = self._planner.release(doc_id)
            try:
                self._call(index, "remove_document", {"doc_id": doc_id})
            except ShardUnavailableError:
                self.collection.add(document)
                self._planner.assign(document.doc_id)
                raise
            self._epoch += 1
        return document

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every worker down (graceful first, then terminate).

        The shared arena segment (if any) is unlinked *after* the
        workers drain: attached mappings stay valid until each worker
        detaches, so teardown order only affects new attaches — and a
        post-unlink respawn attempt simply falls back to packing a
        private arena.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for handle in self._handles:
                handle.destroy(graceful=True)
            if self._segment is not None:
                self._segment.unlink()

    def __enter__(self) -> "ShardedEngine":
        """Enter the context manager; returns the coordinator itself."""
        return self

    def __exit__(self, exc_type: type[BaseException] | None,
                 exc: BaseException | None,
                 tb: TracebackType | None) -> None:
        """Exit the context manager, shutting the workers down."""
        self.close()

    # ------------------------------------------------------------------
    # Scatter-gather internals
    # ------------------------------------------------------------------
    def _config(self, config: KNDSConfig | None,
                overrides: dict[str, Any]) -> KNDSConfig:
        base = self.default_config if config is None else config
        return replace(base, **overrides) if overrides else base

    def _sds_concepts(
        self, query_document: Document | str | Sequence[ConceptId],
    ) -> tuple[ConceptId, ...]:
        if isinstance(query_document, str):
            return self.collection.get(query_document).require_concepts()
        if isinstance(query_document, Document):
            return query_document.require_concepts()
        return tuple(query_document)

    def _traced_scatter(self, kind: str, algorithm: str, k: int,
                        method: str, kwargs: dict[str, Any]) -> list[Any]:
        obs = self._obs
        tracer = obs.tracer if obs is not None else NULL_TRACER
        start = time.perf_counter()
        with tracer.span("shard.query", kind=kind, algorithm=algorithm,
                         k=k, shards=self.shards):
            payloads = self._fanout(method, kwargs)
        if obs is not None:
            obs.observe_query(time.perf_counter() - start)
        return payloads

    def _fanout(self, method: str, kwargs: dict[str, Any]) -> list[Any]:
        """One request to every shard; per-shard timeout and retry."""
        if self._m_fanout is not None:
            self._m_fanout.inc(self.shards)
        submissions: list[tuple[_ShardHandle, Future[Any] | None]] = []
        for handle in self._handles:
            try:
                submissions.append((handle, handle.submit(method, kwargs)))
            except _WorkerDied:
                submissions.append((handle, None))
        payloads = []
        for index, (handle, future) in enumerate(submissions):
            shard_start = time.perf_counter()
            payloads.append(self._gather(index, handle, future,
                                         method, kwargs))
            self._note_latency(index, time.perf_counter() - shard_start)
        return payloads

    def _gather(self, index: int, handle: _ShardHandle,
                future: "Future[Any] | None", method: str,
                kwargs: dict[str, Any]) -> Any:
        try:
            if future is None:
                raise _WorkerDied(f"shard {index} link was already down")
            return self._await(index, future)
        except (_WorkerDied, ShardTimeoutError) as failure:
            _LOG.warning("shard call failed; respawning",
                         extra={"shard": index, "method": method,
                                "failure": str(failure)})
            return self._recover(index, handle, method, kwargs, failure)

    def _call(self, index: int, method: str,
              kwargs: dict[str, Any]) -> Any:
        """Single-shard call with the same failure semantics as fan-out."""
        handle = self._handles[index]
        try:
            return self._await(index, handle.submit(method, kwargs))
        except (_WorkerDied, ShardTimeoutError) as failure:
            return self._recover(index, handle, method, kwargs, failure)

    def _await(self, index: int, future: "Future[Any]") -> Any:
        try:
            return future.result(self.timeout_seconds)
        except FutureTimeout:
            raise ShardTimeoutError(index, self.timeout_seconds) from None

    def _recover(self, index: int, failed: _ShardHandle, method: str,
                 kwargs: dict[str, Any],
                 failure: Exception) -> Any:
        """Respawn the worker and retry once; mutations are not retried
        (the respawn rebuilds from the already-mutated collection)."""
        handle = self._respawn(index, failed, reason=str(failure))
        if method in _MUTATIONS:
            return None
        try:
            return self._await(index, handle.submit(method, kwargs))
        except (_WorkerDied, ShardTimeoutError) as second:
            raise ShardUnavailableError(index, str(second)) from second

    def _respawn(self, index: int, failed: _ShardHandle, *,
                 reason: str) -> _ShardHandle:
        with self._lock:
            if self._closed:
                raise ShardUnavailableError(index, "engine is closed")
            current = self._handles[index]
            if current is not failed and not current.dead:
                return current  # another thread already respawned it
            current.destroy()
            documents = self._planner.members(index, self.collection)
            try:
                handle = self._spawn(index, documents)
            except (OSError, ShardProtocolError,
                    ShardUnavailableError) as error:
                raise ShardUnavailableError(index, str(error)) from error
            self._handles[index] = handle
            self._restarts[index] += 1
            if self._m_respawns is not None:
                self._m_respawns.inc()
            _LOG.warning("shard worker respawned",
                         extra={"shard": index, "reason": reason,
                                "documents": len(documents),
                                "restarts": self._restarts[index]})
            return handle

    def _spawn(self, index: int, documents: Sequence[Document],
               ) -> _ShardHandle:
        """Start one worker process and complete the handshake."""
        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(self.spawn_timeout_seconds)
        _host, port = listener.getsockname()[:2]
        token = secrets.token_bytes(16)
        segment = self._segment
        spec = WorkerSpec(
            shard_index=index, host="127.0.0.1", port=port, token=token,
            ontology=self.ontology, documents=tuple(documents),
            collection_name=self.collection.name,
            default_config=self.default_config,
            arena=segment.spec if segment is not None else None,
            kernel_tier=self._kernel_tier)
        process = self._ctx.Process(
            target=run_worker, args=(spec,),
            name=f"repro-shard-{index}", daemon=True)
        process.start()
        try:
            sock = self._accept(listener, process, index)
        finally:
            listener.close()
        sock.settimeout(self.spawn_timeout_seconds)
        try:
            hello = recv_frame(sock)
        except (EOFError, OSError) as error:
            sock.close()
            process.terminate()
            raise ShardUnavailableError(
                index, "worker link dropped during handshake") from error
        if hello != ("hello", token, index):
            sock.close()
            process.terminate()
            raise ShardProtocolError(
                f"shard {index} handshake failed (bad token or index)")
        sock.settimeout(None)
        return _ShardHandle(index, process, sock)

    def _accept(self, listener: socket.socket, process: Any,
                index: int) -> socket.socket:
        """Wait for the worker to dial back, noticing early deaths.

        Polls in short slices so a worker that crashes during import
        fails the spawn immediately instead of after the full timeout.
        """
        deadline = time.monotonic() + self.spawn_timeout_seconds
        listener.settimeout(0.1)
        while True:
            try:
                sock, _addr = listener.accept()
                return sock
            except TimeoutError:
                if not process.is_alive():
                    raise ShardUnavailableError(
                        index, "worker process died during startup"
                    ) from None
                if time.monotonic() >= deadline:
                    process.terminate()
                    raise ShardUnavailableError(
                        index, "worker did not connect back in time"
                    ) from None

    # ------------------------------------------------------------------
    # Merge and metrics
    # ------------------------------------------------------------------
    def _merge(self, payloads: list[Any], k: int) -> RankedResults:
        parts = [payload for payload in payloads
                 if isinstance(payload, RankedResults)]
        merged = merge_ranked(parts, k)
        self._note_merge(sum(len(part) for part in parts), len(merged))
        return merged

    def _merge_many(self, payloads: list[Any], k: int,
                    count: int) -> list[RankedResults]:
        lists = [payload for payload in payloads
                 if isinstance(payload, list)]
        merged = [merge_ranked(list(parts), k) for parts in zip(*lists)]
        if count and not merged:
            # zip(*[]) of an empty batch: preserve list-per-query shape.
            return []
        self._note_merge(
            sum(len(part) for parts in lists for part in parts),
            sum(len(result) for result in merged))
        return merged

    def _note_merge(self, collected: int, kept: int) -> None:
        if self._m_kept is not None:
            self._m_kept.inc(kept)
        if self._m_dropped is not None:
            self._m_dropped.inc(max(0, collected - kept))

    def _note_latency(self, index: int, seconds: float) -> None:
        if self._m_latency is not None:
            self._m_latency.observe(seconds)
        if index < len(self._m_shard_latency):
            self._m_shard_latency[index].observe(seconds)
